//! The parallel scheduling fabric: one generic worker driver that both
//! store backends run on.
//!
//! PR 2 (replicated stores) and PR 4 (one shared address-sharded store)
//! each hand-rolled the same worker loop — steal discipline, idle
//! backoff, pending-counter termination, pop-keyed limit checks — and
//! the ROADMAP warned that scheduling fixes of the PR 2 class (stale
//! dependency wakeups, timeout starvation) must never be applied to
//! only one copy. This module is that extraction: the loop exists once,
//! parameterized over a [`BackendWorker`] that contributes only the
//! store-specific operations (how facts move, how dependencies
//! register, what a message means).
//!
//! # What the fabric owns
//!
//! * **stealable fresh-config deques** — one per worker; owners pop the
//!   front, thieves steal half from the back (the steal's two queue
//!   locks are never held across each other, so crossed steals cannot
//!   deadlock);
//! * **hash-sharded global dedup** of first-time configurations
//!   ([`WorkerCtx::submit_fresh`]);
//! * **pinned wakeups** — re-evaluations of a configuration run only on
//!   its home worker (where its read set and last-run state live), via
//!   a worker-private dedup-free wake queue whose duplicate pops the
//!   backend's epoch gate absorbs;
//! * **the pending-counter termination protocol** — one atomic counts
//!   queued tasks + in-flight evaluations + undelivered messages +
//!   queued wakeups; a task or message releases its own count only
//!   after everything it spawned has been counted, so `pending == 0`
//!   observed by an idle worker proves global quiescence
//!   ([`Fabric::finish`] asserts it on every completed run);
//! * **pop-keyed limit checks** — the wall clock and the store-bytes
//!   watermark are consulted every [`LIMIT_CHECK_CADENCE`] *pops*
//!   (evaluations and gate-skips alike), so a long run of skipped pops
//!   can never starve the timeout — the PR 2 fix, now in one place;
//! * **the iteration budget** — a global evaluation counter claimed
//!   before each step;
//! * **idle-spin backoff** and the [`SchedStats`] accounting for all of
//!   the above;
//! * **adaptive wake-batch coalescing** ([`WakeBatching`]) — how much
//!   of the inbox one drain takes before the worker returns to
//!   evaluating.
//!
//! # What a backend contributes
//!
//! The [`BackendWorker`] hooks are exactly the store-specific residue:
//! how a configuration is interned and epoch-gated against *its* store
//! view, what one evaluation does (step, dependency registration,
//! growth announcement), what an inter-worker message means (a
//! replicated fact batch to merge; a sharded growth / dependency /
//! wake routing message), and what the store-bytes watermark trims.
//! The replicated backend ([`crate::parallel`]) and the sharded
//! backend ([`crate::shardstore`]) implement it; the differential
//! suites prove both reach the sequential engine's fixpoint through
//! this one loop.

use crate::engine::{panic_message, CancelToken, EngineLimits, EvalMode, SchedStats, Status};
use crate::fxhash::{FxHashSet, FxHasher};
use crate::telemetry::TraceBuffer;
use std::collections::VecDeque;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Poison-recovering locking, used for every mutex the fabric and the
/// sharded store share across workers.
///
/// Every structure guarded this way is join-semilattice data (dedup
/// sets, idempotent joins, FIFO queues of by-value tasks): a panic
/// mid-update can at worst leave a *smaller* value than intended, never
/// a corrupt one, so the data behind a poisoned lock is still soundly
/// usable — a torn write is soundly re-joinable, and an aborted run
/// must be able to drain it into a partial result.
pub(crate) trait LockRecovered<T: ?Sized> {
    /// Locks, unwrapping [`std::sync::PoisonError`] into its guard.
    fn lock_recovered(&self) -> MutexGuard<'_, T>;
}

impl<T: ?Sized> LockRecovered<T> for Mutex<T> {
    fn lock_recovered(&self) -> MutexGuard<'_, T> {
        self.lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// Number of seen-set shards (a power of two well above any sane
/// thread count, so dedup contention stays negligible).
const SEEN_SHARDS: usize = 64;

/// Pops between wall-clock / watermark checks. Keyed on *total* pops
/// (evaluations + gate-skips): a long run of skipped pops must still
/// consult the clock, or it could overrun `time_budget` unnoticed.
pub const LIMIT_CHECK_CADENCE: u64 = 64;

/// Smallest bounded inbox drain under [`WakeBatching::Adaptive`].
const MIN_DRAIN_BATCH: usize = 8;

/// Largest bounded inbox drain under [`WakeBatching::Adaptive`].
const MAX_DRAIN_BATCH: usize = 512;

/// Seen-set shard for a configuration. Taken from the *high* hash bits:
/// the intra-shard `FxHashSet` derives its bucket index from the low
/// bits of the very same hash, so sharding on those would cluster every
/// entry of a shard onto 1/64th of the bucket positions.
fn seen_shard<C: Hash>(cfg: &C) -> usize {
    let mut h = FxHasher::default();
    cfg.hash(&mut h);
    (h.finish() >> 58) as usize % SEEN_SHARDS
}

/// How a worker drains its message inbox — the wake-batch coalescing
/// policy.
///
/// Messages (fact batches, growth notifications, dependency
/// registrations, remote wakeups) arrive in per-worker inboxes and are
/// always delivered before new evaluations are taken on. The policy
/// decides *how many* one drain takes:
///
/// * [`WakeBatching::Adaptive`] (the default) takes a bounded batch
///   sized by the worker's observed average inbox depth (clamped to
///   8..=512), then returns to evaluating. Workers that historically
///   see deep inboxes take bigger gulps (amortizing the inbox lock);
///   workers with shallow traffic take small ones, so evaluations —
///   and the wake coalescing that deferring pinned re-runs buys —
///   interleave with delivery instead of stalling behind a deep inbox.
/// * [`WakeBatching::DrainAll`] takes the whole inbox and delivers
///   every message before the next evaluation — the pre-fabric
///   behavior, kept selectable so `engine_bench` can measure the
///   before/after cells.
///
/// Carried on [`EngineLimits::wake_batching`]; ignored by the
/// sequential engine (which has no inbox).
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub enum WakeBatching {
    /// Bounded drains sized by the observed average inbox depth.
    #[default]
    Adaptive,
    /// Unbounded drains: deliver everything before evaluating.
    DrainAll,
}

/// A deterministic fault-injection plan, threaded through cheap atomic
/// hooks in the worker loop (one `Option` branch per pop when unarmed —
/// `engine_bench` pins that this costs nothing).
///
/// Clauses are keyed on exact per-run pop / evaluation counts, so a
/// fault lands at the same logical point on every run regardless of
/// thread interleaving:
///
/// * **panic at evaluation N** (optionally only counting worker W's
///   evaluations) — exercises the panic-isolation path end to end:
///   `catch_unwind`, abort broadcast, drain, join, partial result;
/// * **cancel at pop N** — flips the run's armed [`CancelToken`]
///   (observed by the loop exactly like an external
///   [`EngineLimits::cancel`]), pinning the cancellation-latency bound;
/// * **trim at pop N** — forces a delta-log trim mid-run (watermark 0),
///   exercising the snapshot-loss fallback without memory pressure;
/// * **leak pending at pop N** — deliberately breaks the termination
///   protocol (one phantom pending count), proving the stall watchdog
///   turns a would-be hang into a diagnostic abort.
///
/// A `FaultPlan` is pure clauses — the counters the clauses key on
/// live in the per-run `ArmedFaultPlan` each engine entry point
/// creates. Sharing one plan (or one cloned [`EngineLimits`]) across
/// concurrent runs is therefore safe: each run counts its *own* pops
/// and evaluations and flips its *own* cancel token, so a fault
/// planned against one run can never fire in a pool-mate that merely
/// inherited the same limits.
///
/// Carried on [`EngineLimits::fault_plan`]; the CLI arms one from the
/// `CFA_FAULT_PLAN` environment variable (see [`FaultPlan::parse`]).
#[derive(Debug, Default, Clone)]
pub struct FaultPlan {
    /// Panic when the run's (or one worker's) evaluation count reaches
    /// this 1-based value.
    panic_at_eval: Option<u64>,
    /// Restrict the panic clause's counting to this worker id.
    panic_worker: Option<usize>,
    /// Flip the run's cancel token when its pop count reaches this.
    cancel_at_pop: Option<u64>,
    /// Force a watermark-0 delta-log trim at this run pop count.
    trim_at_pop: Option<u64>,
    /// Add one phantom pending count at this run pop count.
    leak_at_pop: Option<u64>,
}

/// Pop-keyed side effects [`FaultPlan::on_pop`] asks the worker loop to
/// perform (the plan itself owns the cancel flip).
#[derive(Copy, Clone, Debug, Default)]
pub(crate) struct PopFaults {
    /// Force `enforce_watermark(0, ..)` on this worker now.
    pub trim: bool,
    /// Add one phantom pending count (watchdog test hook).
    pub leak: bool,
}

impl FaultPlan {
    /// An empty plan (no clauses armed).
    pub fn new() -> Self {
        Self::default()
    }

    /// Arms a panic on the `nth` (1-based) counted evaluation.
    pub fn panic_at_eval(mut self, nth: u64) -> Self {
        self.panic_at_eval = Some(nth);
        self
    }

    /// Restricts the panic clause to count only worker `w`'s
    /// evaluations.
    pub fn on_worker(mut self, w: usize) -> Self {
        self.panic_worker = Some(w);
        self
    }

    /// Arms a cancellation at the `nth` (1-based) global pop.
    pub fn cancel_at_pop(mut self, nth: u64) -> Self {
        self.cancel_at_pop = Some(nth);
        self
    }

    /// Arms a forced delta-log trim at the `nth` (1-based) global pop.
    pub fn trim_at_pop(mut self, nth: u64) -> Self {
        self.trim_at_pop = Some(nth);
        self
    }

    /// Arms a phantom pending count at the `nth` (1-based) global pop —
    /// a deliberate termination-protocol violation for exercising the
    /// stall watchdog.
    pub fn leak_pending_at_pop(mut self, nth: u64) -> Self {
        self.leak_at_pop = Some(nth);
        self
    }

    /// Parses the `CFA_FAULT_PLAN` knob: comma-separated `key=value`
    /// clauses, e.g. `panic_eval=40,panic_worker=1` or
    /// `cancel_pop=100`. Keys: `panic_eval`, `panic_worker`,
    /// `cancel_pop`, `trim_pop`, `leak_pop`.
    pub fn parse(s: &str) -> Result<Self, String> {
        let mut plan = FaultPlan::new();
        for clause in s.split(',').map(str::trim).filter(|c| !c.is_empty()) {
            let (key, value) = clause
                .split_once('=')
                .ok_or_else(|| format!("clause {clause:?} is not key=value"))?;
            let n: u64 = value
                .trim()
                .parse()
                .map_err(|e| format!("clause {clause:?}: {e}"))?;
            match key.trim() {
                "panic_eval" => plan.panic_at_eval = Some(n),
                "panic_worker" => plan.panic_worker = Some(n as usize),
                "cancel_pop" => plan.cancel_at_pop = Some(n),
                "trim_pop" => plan.trim_at_pop = Some(n),
                "leak_pop" => plan.leak_at_pop = Some(n),
                other => return Err(format!("unknown fault clause key {other:?}")),
            }
        }
        Ok(plan)
    }
}

/// A [`FaultPlan`] armed for exactly one fixpoint run: the clauses plus
/// the run-private pop/eval counters they key on and the run-private
/// cancel token the `cancel_at_pop` clause flips.
///
/// Every engine entry point (sequential, parallel drive, pool tenant)
/// creates one of these at run entry — never shared across runs — so
/// two concurrent fixpoints cloned from the same [`EngineLimits`]
/// count independently and cannot trigger (or cancel) each other.
#[derive(Debug)]
pub(crate) struct ArmedFaultPlan {
    plan: FaultPlan,
    evals: AtomicU64,
    pops: AtomicU64,
    token: CancelToken,
}

impl ArmedFaultPlan {
    /// Arms `plan` for one run with fresh counters and a fresh token.
    pub(crate) fn new(plan: &FaultPlan) -> Self {
        ArmedFaultPlan {
            plan: plan.clone(),
            evals: AtomicU64::new(0),
            pops: AtomicU64::new(0),
            token: CancelToken::new(),
        }
    }

    /// Whether this run's injected `cancel_at_pop` clause has fired.
    /// Checked by the loops' cadenced cancel test alongside the
    /// external [`EngineLimits::cancel`] token.
    pub(crate) fn cancelled(&self) -> bool {
        self.token.is_cancelled()
    }

    /// Pop hook: counts one pop of this run and fires any pop-keyed
    /// clause landing exactly on it. Called by the worker loop once per
    /// pop *only when a plan is armed*.
    pub(crate) fn on_pop(&self) -> PopFaults {
        let n = self.pops.fetch_add(1, Ordering::AcqRel) + 1;
        if self.plan.cancel_at_pop == Some(n) {
            self.token.cancel();
        }
        PopFaults {
            trim: self.plan.trim_at_pop == Some(n),
            leak: self.plan.leak_at_pop == Some(n),
        }
    }

    /// Evaluation hook: counts one evaluation on `worker` and panics
    /// when the armed clause lands on it. Runs *inside* the loop's
    /// `catch_unwind`, so the injected panic takes the exact path a
    /// real transfer-function panic takes.
    pub(crate) fn on_eval(&self, worker: usize) {
        let Some(nth) = self.plan.panic_at_eval else {
            return;
        };
        if self.plan.panic_worker.is_some_and(|w| w != worker) {
            return;
        }
        let n = self.evals.fetch_add(1, Ordering::AcqRel) + 1;
        if n == nth {
            panic!("injected fault: panic at evaluation {nth} (worker {worker})");
        }
    }
}

/// State shared by all workers of one parallel run: the scheduling
/// fabric. `C` is the machine's configuration type, `M` the backend's
/// inter-worker message type.
#[derive(Debug)]
pub struct Fabric<C, M> {
    /// Per-worker queues of *fresh* (never-evaluated) configurations.
    /// Owners push/pop the front; thieves steal a batch from the back.
    /// Tasks carry configurations by value so a stolen task is
    /// meaningful on any worker; wakeups never enter these queues —
    /// they are pinned to the home worker's private queue.
    queues: Vec<Mutex<VecDeque<C>>>,
    /// Per-worker message inboxes (ring buffers: senders push the
    /// back, bounded drains pop the front in O(batch)).
    inboxes: Vec<Mutex<VecDeque<M>>>,
    /// Global dedup of first-time configurations, sharded by hash.
    seen: Vec<Mutex<FxHashSet<C>>>,
    /// Queued tasks + in-flight evaluations + undelivered messages +
    /// queued wakeups.
    pending: AtomicU64,
    /// Raised once: fixpoint reached or a limit fired.
    done: AtomicBool,
    /// Global evaluation counter (for `max_iterations`).
    evals: AtomicU64,
    /// The limit that stopped the run, if any (first writer wins).
    stop_status: Mutex<Option<Status>>,
    /// Per-worker idle flags and last-published counters, for the stall
    /// watchdog: updated only on idle transitions, so the hot loop pays
    /// nothing.
    meters: Vec<WorkerMeter>,
    /// Milliseconds-since-start (plus one, so zero means "not all
    /// idle") of the moment every worker was first observed idle with
    /// work still pending. Reset whenever any worker finds work.
    all_idle_since: AtomicU64,
}

/// One worker's watchdog mirror: its idle flag plus the scheduling
/// counters it last published (on entering idle — exact at the only
/// moment the watchdog reads them, since an idle worker's counters
/// don't move).
#[derive(Debug, Default)]
struct WorkerMeter {
    idle: AtomicBool,
    pops: AtomicU64,
    iterations: AtomicU64,
    skipped: AtomicU64,
    steals: AtomicU64,
    idle_spins: AtomicU64,
}

impl<C: Clone + Eq + Hash, M> Fabric<C, M> {
    /// An empty fabric for `threads` workers (at least one).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        Fabric {
            queues: (0..threads).map(|_| Mutex::new(VecDeque::new())).collect(),
            inboxes: (0..threads).map(|_| Mutex::new(VecDeque::new())).collect(),
            seen: (0..SEEN_SHARDS)
                .map(|_| Mutex::new(FxHashSet::default()))
                .collect(),
            pending: AtomicU64::new(0),
            done: AtomicBool::new(false),
            evals: AtomicU64::new(0),
            stop_status: Mutex::new(None),
            meters: (0..threads).map(|_| WorkerMeter::default()).collect(),
            all_idle_since: AtomicU64::new(0),
        }
    }

    /// Number of workers this fabric schedules.
    pub fn threads(&self) -> usize {
        self.queues.len()
    }

    /// Seeds the run: marks `root` seen and queues it at worker 0.
    pub fn submit_root(&self, root: C) {
        self.seen[seen_shard(&root)]
            .lock_recovered()
            .insert(root.clone());
        self.pending_add();
        self.queues[0].lock_recovered().push_back(root);
    }

    /// Records the limit that stopped the run (first writer wins) and
    /// raises the done flag.
    pub(crate) fn stop(&self, status: Status) {
        let mut slot = self.stop_status.lock_recovered();
        slot.get_or_insert(status);
        self.done.store(true, Ordering::Release);
    }

    fn pending_add(&self) {
        self.pending.fetch_add(1, Ordering::AcqRel);
    }

    fn pending_sub(&self) {
        self.pending.fetch_sub(1, Ordering::AcqRel);
    }

    /// Tears the fabric down after all workers have returned: the final
    /// [`Status`] and the global configuration set (the drained dedup).
    ///
    /// # Panics
    ///
    /// On a [`Status::Completed`] run the pending counter must be
    /// exactly zero — queued tasks, in-flight evaluations, undelivered
    /// messages, and queued wakeups have all been released — and this
    /// asserts it: a nonzero count would mean the termination protocol
    /// lost or double-counted work.
    pub fn finish(self) -> (Status, Vec<C>) {
        let status = self
            .stop_status
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .unwrap_or(Status::Completed);
        if status == Status::Completed {
            assert_eq!(
                self.pending.load(Ordering::Acquire),
                0,
                "completed run with nonzero pending: termination protocol broken"
            );
        }
        let configs = self
            .seen
            .into_iter()
            .flat_map(|shard| {
                shard
                    .into_inner()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
            })
            .collect();
        (status, configs)
    }

    /// Publishes worker `id`'s counters and marks it idle — called on
    /// each turn of the idle loop, never on the evaluation hot path.
    fn note_idle(&self, id: usize, ctx_pops: u64, sched: &SchedStats, iters: u64, skipped: u64) {
        let m = &self.meters[id];
        m.pops.store(ctx_pops, Ordering::Relaxed);
        m.iterations.store(iters, Ordering::Relaxed);
        m.skipped.store(skipped, Ordering::Relaxed);
        m.steals.store(sched.steals, Ordering::Relaxed);
        m.idle_spins.store(sched.idle_spins, Ordering::Relaxed);
        m.idle.store(true, Ordering::Release);
    }

    /// Marks worker `id` busy again and resets the all-idle stall
    /// clock — called once per idle→busy transition.
    fn note_busy(&self, id: usize) {
        self.meters[id].idle.store(false, Ordering::Release);
        self.all_idle_since.store(0, Ordering::Release);
    }

    /// The stall watchdog: with work still pending and *every* worker
    /// idle, starts (or reads) the all-idle clock; once the state has
    /// persisted past `threshold`, returns the diagnostic dump to abort
    /// with. All-idle-with-pending is terminal — idle workers send no
    /// messages and steal from empty queues, so nothing can wake
    /// anyone — which is exactly why it is safe to call it a bug rather
    /// than latency.
    fn check_stall(&self, threshold: Duration, start: Instant) -> Option<String> {
        if self.pending.load(Ordering::Acquire) == 0 {
            return None;
        }
        if !self.meters.iter().all(|m| m.idle.load(Ordering::Acquire)) {
            return None;
        }
        let now = start.elapsed().as_millis() as u64 + 1;
        let since = self.all_idle_since.load(Ordering::Acquire);
        if since == 0 {
            let _ =
                self.all_idle_since
                    .compare_exchange(0, now, Ordering::AcqRel, Ordering::Acquire);
            return None;
        }
        if now.saturating_sub(since) < threshold.as_millis() as u64 {
            return None;
        }
        // Re-validate before aborting: a worker that found work in the
        // meantime has reset the clock.
        if self.all_idle_since.load(Ordering::Acquire) == since
            && self.meters.iter().all(|m| m.idle.load(Ordering::Acquire))
            && self.pending.load(Ordering::Acquire) > 0
        {
            Some(self.stall_dump())
        } else {
            None
        }
    }

    /// The watchdog's diagnostic: the pending count plus, per worker,
    /// the last-published scheduling counters and the live inbox/queue
    /// depths — enough to tell a lost wakeup (pending counted, no queue
    /// holds it) from an undrained inbox or an unpopped queue.
    fn stall_dump(&self) -> String {
        use std::fmt::Write as _;
        let mut out = format!(
            "stall watchdog: pending={} with all {} workers idle;",
            self.pending.load(Ordering::Acquire),
            self.threads()
        );
        for (id, m) in self.meters.iter().enumerate() {
            let inbox_depth = self.inboxes[id].lock_recovered().len();
            let queue_depth = self.queues[id].lock_recovered().len();
            let _ = write!(
                out,
                " [worker {id}: pops={} iterations={} skipped={} steals={} \
                 idle_spins={} inbox_depth={inbox_depth} queue_depth={queue_depth}]",
                m.pops.load(Ordering::Relaxed),
                m.iterations.load(Ordering::Relaxed),
                m.skipped.load(Ordering::Relaxed),
                m.steals.load(Ordering::Relaxed),
                m.idle_spins.load(Ordering::Relaxed),
            );
        }
        out
    }
}

/// One worker's handle onto the fabric: its identity, its private wake
/// queue, and the scheduling counters the driver accumulates. Backends
/// receive `&mut WorkerCtx` in every hook and use it to submit fresh
/// configurations, schedule wakeups, and route messages — they never
/// touch the shared state directly.
#[derive(Debug)]
pub struct WorkerCtx<'f, C, M> {
    id: usize,
    fabric: &'f Fabric<C, M>,
    mode: EvalMode,
    batching: WakeBatching,
    /// Pinned re-evaluations of locally homed configurations, by local
    /// index. Worker-private (no lock): only the owner pushes and pops.
    /// Deliberately dedup-free — the backend's epoch gate absorbs
    /// duplicate pops in O(|reads|).
    wakes: VecDeque<usize>,
    /// Dependent re-enqueues this worker scheduled (local wakes plus
    /// remote wakes it shipped).
    pub wakeups: u64,
    /// `(address, value)` facts this worker's evaluations added.
    pub delta_facts: u64,
    /// Application sites this worker processed in narrowed semi-naive
    /// form.
    pub delta_applies: u64,
    /// Scheduler observability counters.
    pub sched: SchedStats,
    /// This worker's telemetry ring ([`crate::telemetry`]): the loop
    /// and the backend hooks emit timeline events into it. Costs one
    /// branch per emit when tracing is off.
    pub trace: TraceBuffer,
    /// Sum of inbox depths observed at each non-empty drain — the
    /// adaptive batching signal (`depth_sum / sched.inbox_drains` is
    /// the average depth this worker actually finds waiting).
    depth_sum: u64,
    iterations: u64,
    skipped: u64,
    /// Pops this worker has taken (evaluations + gate-skips) — keys the
    /// cadenced limit checks.
    pops: u64,
    /// Whether the last turn ended idle — the next turn that finds work
    /// publishes the idle→busy transition to the stall watchdog.
    was_idle: bool,
}

/// The persistent half of a [`WorkerCtx`], detached from the fabric
/// borrow: the private wake queue plus every per-worker counter.
///
/// A worker that runs to quiescence on one thread never needs this —
/// [`WorkerCtx`] lives for the whole loop. The analysis pool does: a
/// pool tenant runs in bounded quanta on whichever pool worker picks it
/// up next, so between quanta its loop state is parked here
/// ([`WorkerCtx::suspend`]) and rebound to the fabric on the next visit
/// ([`WorkerCtx::resume`]).
#[derive(Debug, Default)]
pub(crate) struct WorkerState {
    wakes: VecDeque<usize>,
    wakeups: u64,
    delta_facts: u64,
    delta_applies: u64,
    sched: SchedStats,
    pub(crate) trace: TraceBuffer,
    depth_sum: u64,
    pub(crate) iterations: u64,
    pub(crate) skipped: u64,
    pops: u64,
    was_idle: bool,
}

/// Everything a finished worker contributes to its run's totals — one
/// named field per counter, so a result-assembly site that forgets a
/// field fails to compile instead of silently dropping it (the bug
/// class the tuple this replaced invited).
#[derive(Debug, Default)]
pub(crate) struct WorkerTotals {
    pub(crate) iterations: u64,
    pub(crate) skipped: u64,
    pub(crate) wakeups: u64,
    pub(crate) delta_facts: u64,
    pub(crate) delta_applies: u64,
    pub(crate) sched: SchedStats,
    pub(crate) trace: TraceBuffer,
}

impl WorkerState {
    /// Fresh state carrying `trace` — how a pool tenant installs its
    /// ring before the first resume.
    pub(crate) fn with_trace(trace: TraceBuffer) -> Self {
        WorkerState {
            trace,
            ..WorkerState::default()
        }
    }

    /// Consumes the parked state into the totals a finished run
    /// reports.
    pub(crate) fn into_totals(self) -> WorkerTotals {
        WorkerTotals {
            iterations: self.iterations,
            skipped: self.skipped,
            wakeups: self.wakeups,
            delta_facts: self.delta_facts,
            delta_applies: self.delta_applies,
            sched: self.sched,
            trace: self.trace,
        }
    }
}

impl<'f, C: Clone + Eq + Hash, M> WorkerCtx<'f, C, M> {
    fn new(
        id: usize,
        fabric: &'f Fabric<C, M>,
        mode: EvalMode,
        batching: WakeBatching,
        trace: TraceBuffer,
    ) -> Self {
        let state = WorkerState {
            trace,
            ..WorkerState::default()
        };
        Self::resume(id, fabric, mode, batching, state)
    }

    /// Rebinds parked worker state to `fabric` for the next run quantum
    /// (the inverse of [`WorkerCtx::suspend`]).
    pub(crate) fn resume(
        id: usize,
        fabric: &'f Fabric<C, M>,
        mode: EvalMode,
        batching: WakeBatching,
        state: WorkerState,
    ) -> Self {
        WorkerCtx {
            id,
            fabric,
            mode,
            batching,
            wakes: state.wakes,
            wakeups: state.wakeups,
            delta_facts: state.delta_facts,
            delta_applies: state.delta_applies,
            sched: state.sched,
            trace: state.trace,
            depth_sum: state.depth_sum,
            iterations: state.iterations,
            skipped: state.skipped,
            pops: state.pops,
            was_idle: state.was_idle,
        }
    }

    /// Parks this worker's loop state, releasing the fabric borrow
    /// until the next [`WorkerCtx::resume`].
    pub(crate) fn suspend(self) -> WorkerState {
        WorkerState {
            wakes: self.wakes,
            wakeups: self.wakeups,
            delta_facts: self.delta_facts,
            delta_applies: self.delta_applies,
            sched: self.sched,
            trace: self.trace,
            depth_sum: self.depth_sum,
            iterations: self.iterations,
            skipped: self.skipped,
            pops: self.pops,
            was_idle: self.was_idle,
        }
    }

    /// Publishes the idle→busy transition (at most once per idle
    /// stretch) — called whenever a turn finds messages or a task.
    fn note_busy_transition(&mut self) {
        if self.was_idle {
            self.fabric.note_busy(self.id);
            self.was_idle = false;
        }
    }

    /// This worker's index (0-based; also its shard id under the
    /// sharded backend).
    pub fn id(&self) -> usize {
        self.id
    }

    /// Total pops this worker has taken (evaluations + gate-skips) —
    /// the analysis pool meters its bounded quanta on this.
    pub(crate) fn pops(&self) -> u64 {
        self.pops
    }

    /// Total workers in the run.
    pub fn threads(&self) -> usize {
        self.fabric.threads()
    }

    /// The evaluation mode of the run (semi-naive vs full
    /// re-evaluation).
    pub fn mode(&self) -> EvalMode {
        self.mode
    }

    /// Ships `msg` to `target`'s inbox, counting it pending until the
    /// receiver processes it.
    pub fn send(&self, target: usize, msg: M) {
        self.fabric.pending_add();
        self.fabric.inboxes[target].lock_recovered().push_back(msg);
    }

    /// Routes never-seen successors through the global dedup into this
    /// worker's stealable queue (locality first; stealing rebalances).
    pub fn submit_fresh(&self, successors: &mut Vec<C>) {
        for succ in successors.drain(..) {
            let fresh = self.fabric.seen[seen_shard(&succ)]
                .lock()
                .expect("seen lock")
                .insert(succ.clone());
            if fresh {
                self.fabric.pending_add();
                self.fabric.queues[self.id]
                    .lock()
                    .expect("queue lock")
                    .push_back(succ);
            }
        }
    }

    /// Schedules a wakeup of locally homed task `i`, counting it both
    /// pending and as a wakeup.
    pub fn wake_local(&mut self, i: usize) {
        self.wakeups += 1;
        self.fabric.pending_add();
        self.wakes.push_back(i);
    }

    /// Enqueues a wakeup delivered *by message* — the sender already
    /// counted it as a wakeup; only the pending count is added here.
    pub fn deliver_wake(&mut self, i: usize) {
        self.fabric.pending_add();
        self.wakes.push_back(i);
    }

    fn pop_local(&self) -> Option<C> {
        self.fabric.queues[self.id].lock_recovered().pop_front()
    }

    /// Steals up to half of a victim's fresh queue (from the back),
    /// keeping one task to run and enqueueing the rest locally. Locks
    /// are never held across each other, so crossed steals cannot
    /// deadlock. Stolen tasks were already counted pending when first
    /// queued — moving them counts nothing.
    fn steal(&mut self) -> Option<C> {
        let n = self.fabric.queues.len();
        for off in 1..n {
            let victim = (self.id + off) % n;
            let mut stolen = {
                let mut q = self.fabric.queues[victim].lock_recovered();
                let len = q.len();
                if len == 0 {
                    continue;
                }
                q.split_off(len - len.div_ceil(2))
            };
            self.trace.steal(stolen.len() as u64);
            let first = stolen.pop_front();
            if !stolen.is_empty() {
                self.fabric.queues[self.id]
                    .lock()
                    .expect("queue lock")
                    .append(&mut stolen);
            }
            self.sched.steals += 1;
            return first;
        }
        self.sched.failed_steals += 1;
        None
    }

    /// How many messages the next inbox drain may take.
    fn drain_limit(&self) -> usize {
        match self.batching {
            WakeBatching::DrainAll => usize::MAX,
            WakeBatching::Adaptive => {
                // Sized by the *observed* inbox depth (what was waiting
                // when this worker drained), never by the delivered
                // batch sizes — those are themselves capped by the
                // limit, and averaging them would pin the limit at
                // MIN_DRAIN_BATCH forever.
                match self.depth_sum.checked_div(self.sched.inbox_drains) {
                    None => MIN_DRAIN_BATCH,
                    Some(avg) => usize::try_from(avg)
                        .unwrap_or(MAX_DRAIN_BATCH)
                        .clamp(MIN_DRAIN_BATCH, MAX_DRAIN_BATCH),
                }
            }
        }
    }

    /// Takes one bounded batch from this worker's inbox (FIFO order
    /// preserved; empty when the inbox is), recording the observed
    /// depth and the drain counters.
    fn drain_inbox(&mut self) -> VecDeque<M> {
        let limit = self.drain_limit();
        let mut inbox = self.fabric.inboxes[self.id].lock_recovered();
        let depth = inbox.len();
        if depth == 0 {
            return VecDeque::new();
        }
        self.sched.inbox_drains += 1;
        self.sched.max_inbox_depth = self.sched.max_inbox_depth.max(depth as u64);
        self.depth_sum += depth as u64;
        let msgs = if depth <= limit {
            std::mem::take(&mut *inbox)
        } else {
            // Front drain of a ring buffer: O(limit), no shifting of
            // the messages left behind.
            inbox.drain(..limit).collect()
        };
        self.sched.inbox_batches += msgs.len() as u64;
        self.trace.inbox_drain(msgs.len() as u64);
        msgs
    }
}

/// The store-specific half of a parallel worker: what the fabric's
/// generic driver ([`drive`]) calls into.
///
/// Implementations hold the worker's store view and its per-config
/// scheduling state (read sets, last-run epochs, dependency lists);
/// the fabric holds everything else. Every hook receives the worker's
/// [`WorkerCtx`] to submit fresh configurations, schedule wakeups, and
/// route messages.
pub trait BackendWorker: Send {
    /// The machine's configuration type (tasks move between workers by
    /// value; `Debug` so an aborted run can name the panicking
    /// configuration).
    type Config: Clone + Eq + Hash + Send + Sync + std::fmt::Debug;
    /// The backend's inter-worker message: a replicated fact batch, or
    /// a sharded growth / dependency / wake routing message.
    type Msg: Send;

    /// Seeds the worker's store view before the loop starts (e.g. the
    /// Featherweight Java machine pre-binds the `Main` receiver).
    fn seed(&mut self, ctx: &mut WorkerCtx<'_, Self::Config, Self::Msg>);

    /// Interns a fresh or stolen configuration into this worker's local
    /// tables, returning its task index. The configuration is homed
    /// here from now on: wakeups for it are pinned to this worker.
    fn intern(&mut self, cfg: Self::Config) -> usize;

    /// The epoch gate: `true` when re-evaluating task `i` is provably a
    /// no-op (no address it last read has grown past the epoch that
    /// evaluation observed). The fabric's wake queues are dedup-free,
    /// so duplicate wakeups die here — this gate is load-bearing, not
    /// an optimization.
    fn gated(&self, i: usize) -> bool;

    /// Evaluates task `i`: step the machine against the store view,
    /// register dependencies (with stale-dep pruning), submit fresh
    /// successors, and announce growth (local wakes + routed messages).
    fn evaluate(&mut self, i: usize, ctx: &mut WorkerCtx<'_, Self::Config, Self::Msg>);

    /// `Debug`-renders task `i`'s configuration, for
    /// [`Status::Aborted`]'s diagnostic when its evaluation panics.
    fn describe(&self, i: usize) -> String;

    /// Delivers one inter-worker message. The fabric releases the
    /// message's pending count after this returns, so everything the
    /// delivery spawns (wakes, forwarded messages) must be counted
    /// inside.
    fn on_msg(&mut self, msg: Self::Msg, ctx: &mut WorkerCtx<'_, Self::Config, Self::Msg>);

    /// Enforces [`EngineLimits::store_bytes_watermark`], called on the
    /// pop cadence: trim delta logs if this worker's store (or its
    /// share of it) outgrew `watermark`.
    fn enforce_watermark(&mut self, watermark: usize, threads: usize);

    /// Final accounting after the loop exits (e.g. measuring
    /// store-resident bytes into `sched` before the driver unions the
    /// replica away).
    fn finish(&mut self, sched: &mut SchedStats);
}

/// What one worker hands back from [`drive`]: its backend (store view,
/// machine, backend-specific counters) plus the fabric-accumulated
/// scheduling counters.
#[derive(Debug)]
pub struct WorkerReport<B> {
    /// The backend worker, for the caller to drain (machine absorb,
    /// store merge, counter sums).
    pub backend: B,
    /// Evaluations this worker performed.
    pub iterations: u64,
    /// Pops absorbed by the epoch gate.
    pub skipped: u64,
    /// Wakeups this worker scheduled.
    pub wakeups: u64,
    /// Facts this worker's evaluations added.
    pub delta_facts: u64,
    /// Narrowed semi-naive application sites.
    pub delta_applies: u64,
    /// Scheduling counters.
    pub sched: SchedStats,
    /// This worker's telemetry ring, merged into
    /// [`crate::telemetry::RunTrace`] at result assembly.
    pub trace: TraceBuffer,
}

/// The unified worker loop — the one place every scheduling invariant
/// lives. See the module docs for the protocol; the order of business
/// each turn is: done flag, inbox (bounded by [`WakeBatching`]), fresh
/// work, pinned wakeups, steal, termination check / idle backoff /
/// stall watchdog; per pop: fault hooks, cadenced cancel + wall-clock +
/// watermark checks, epoch gate, iteration claim, contained evaluation.
///
/// # Fault containment
///
/// `seed` and `evaluate` — the two hooks that run machine (user) code —
/// execute under `catch_unwind`. A caught panic records
/// [`Status::Aborted`] (naming the panicking configuration and the
/// panic payload) via [`Fabric::stop`], which raises the shared done
/// flag: the *first* worker to observe any stop condition — panic,
/// cancellation, deadline, iteration cap, stall — broadcasts it this
/// way, and every other worker exits at its next loop top without
/// taking another task, so shutdown latency is bounded by one in-flight
/// evaluation per worker. The panicking task's pending count is
/// released before breaking, so the counter stays reconciled; the
/// partial result is assembled from whatever every worker had derived,
/// which by monotonicity is a subset of the true fixpoint.
fn run_worker<B: BackendWorker>(
    mut backend: B,
    mut ctx: WorkerCtx<'_, B::Config, B::Msg>,
    limits: &EngineLimits,
    armed: Option<&ArmedFaultPlan>,
    start: Instant,
) -> WorkerReport<B> {
    seed_worker(&mut backend, &mut ctx);

    let mut idle_streak: u32 = 0;
    loop {
        match worker_turn(&mut backend, &mut ctx, limits, armed, start) {
            Turn::Stopped => break,
            Turn::Worked => idle_streak = 0,
            Turn::Idle => {
                idle_streak += 1;
                if idle_streak < 32 {
                    std::thread::yield_now();
                } else {
                    std::thread::sleep(Duration::from_micros(50));
                }
            }
        }
    }

    backend.finish(&mut ctx.sched);

    WorkerReport {
        backend,
        iterations: ctx.iterations,
        skipped: ctx.skipped,
        wakeups: ctx.wakeups,
        delta_facts: ctx.delta_facts,
        delta_applies: ctx.delta_applies,
        sched: ctx.sched,
        trace: ctx.trace,
    }
}

/// Seeds `backend`'s store view under `catch_unwind`: a panicking seed
/// records [`Status::Aborted`] exactly like a panicking evaluation.
/// Runs once per worker before its first turn.
pub(crate) fn seed_worker<B: BackendWorker>(
    backend: &mut B,
    ctx: &mut WorkerCtx<'_, B::Config, B::Msg>,
) {
    if let Err(payload) =
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| backend.seed(ctx)))
    {
        ctx.fabric.stop(Status::Aborted {
            config: "<seed>".to_owned(),
            message: panic_message(payload.as_ref()),
        });
    }
}

/// What one [`worker_turn`] did.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub(crate) enum Turn {
    /// Delivered messages or took a pop — call again immediately.
    Worked,
    /// Nothing to do but the run is still pending — back off (or, in a
    /// pool, yield this tenant's slot) and call again later.
    Idle,
    /// The run is over: quiescent, limit-stopped, or aborted.
    Stopped,
}

/// One turn of the worker loop: the unit [`run_worker`] iterates to
/// quiescence and the analysis pool replays in bounded quanta. All
/// loop state lives in `ctx`, so a turn is resumable across threads
/// (suspend the ctx to a [`WorkerState`], resume it elsewhere).
pub(crate) fn worker_turn<B: BackendWorker>(
    backend: &mut B,
    ctx: &mut WorkerCtx<'_, B::Config, B::Msg>,
    limits: &EngineLimits,
    armed: Option<&ArmedFaultPlan>,
    start: Instant,
) -> Turn {
    if ctx.fabric.done.load(Ordering::Acquire) {
        return Turn::Stopped;
    }

    // Deliver messages before taking on new evaluations, so local
    // wakeups are scheduled against the freshest store view. Under
    // adaptive batching a bounded batch is taken and the worker
    // falls through to evaluate; under drain-all the whole inbox is
    // delivered first (the pre-fabric discipline).
    let msgs = ctx.drain_inbox();
    if !msgs.is_empty() {
        for msg in msgs {
            backend.on_msg(msg, ctx);
            // Only now is the message's own pending released:
            // everything it spawned is already counted.
            ctx.fabric.pending_sub();
        }
        ctx.note_busy_transition();
        if ctx.batching == WakeBatching::DrainAll {
            return Turn::Worked;
        }
    }

    // Fresh exploration first — it discovers the configuration
    // space and is the work that can be stolen; pinned re-runs
    // after (deferring them coalesces several growth events into
    // one re-evaluation); stealing only when both are dry.
    let task: Option<usize> = match ctx.pop_local() {
        Some(cfg) => Some(backend.intern(cfg)),
        None => match ctx.wakes.pop_front() {
            Some(i) => Some(i),
            None => ctx.steal().map(|cfg| backend.intern(cfg)),
        },
    };
    let Some(i) = task else {
        if ctx.fabric.pending.load(Ordering::Acquire) == 0 {
            ctx.fabric.done.store(true, Ordering::Release);
            return Turn::Stopped;
        }
        // Publish counters and the idle flag for the stall
        // watchdog (idle loop only — the hot path pays nothing),
        // then check whether all-idle-with-pending has persisted
        // past the threshold.
        ctx.fabric
            .note_idle(ctx.id, ctx.pops, &ctx.sched, ctx.iterations, ctx.skipped);
        ctx.was_idle = true;
        if let Some(threshold) = limits.stall_timeout {
            ctx.trace.watchdog_tick();
            if let Some(dump) = ctx.fabric.check_stall(threshold, start) {
                ctx.fabric.stop(Status::Aborted {
                    config: Status::STALL_WATCHDOG.to_owned(),
                    message: dump,
                });
                return Turn::Stopped;
            }
        }
        ctx.sched.idle_spins += 1;
        return Turn::Idle;
    };
    ctx.note_busy_transition();

    ctx.pops += 1;
    let pop_faults = armed.map(ArmedFaultPlan::on_pop).unwrap_or_default();
    if pop_faults.leak {
        ctx.fabric.pending_add();
    }
    if pop_faults.trim {
        backend.enforce_watermark(0, ctx.fabric.threads());
    }
    if ctx.pops.is_multiple_of(LIMIT_CHECK_CADENCE) {
        let external = limits
            .cancel
            .as_ref()
            .is_some_and(CancelToken::is_cancelled);
        if external || armed.is_some_and(ArmedFaultPlan::cancelled) {
            ctx.fabric.stop(Status::Cancelled);
            ctx.fabric.pending_sub();
            return Turn::Stopped;
        }
        if let Some(budget) = limits.time_budget {
            if start.elapsed() > budget {
                ctx.fabric.stop(Status::TimedOut);
                ctx.fabric.pending_sub();
                return Turn::Stopped;
            }
        }
        if let Some(watermark) = limits.store_bytes_watermark {
            backend.enforce_watermark(watermark, ctx.fabric.threads());
        }
    }

    // The epoch gate is load-bearing here: the wake queue carries
    // no is-queued dedup, so a configuration woken by several
    // growth events before its re-run pops once per event — and
    // every pop past the first dies here.
    if backend.gated(i) {
        ctx.skipped += 1;
        ctx.trace.gate_skip(i as u64);
        ctx.fabric.pending_sub();
        return Turn::Worked;
    }

    if ctx.fabric.evals.fetch_add(1, Ordering::AcqRel) >= limits.max_iterations {
        ctx.fabric.stop(Status::IterationLimit);
        ctx.fabric.pending_sub();
        return Turn::Worked;
    }
    ctx.iterations += 1;

    // Contained evaluation: the injected-fault hook runs inside the
    // same catch_unwind as the machine's transfer function, so an
    // injected panic exercises exactly the real abort path. The
    // eval_end event is emitted on the panic path too, so every
    // counted iteration has a complete start/end pair in the trace.
    ctx.trace.eval_start(i as u64);
    let evaluated = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        if let Some(plan) = armed {
            plan.on_eval(ctx.id);
        }
        backend.evaluate(i, ctx)
    }));
    ctx.trace.eval_end(i as u64);
    // Only now is this task's own pending count released:
    // everything it spawned is already counted, so pending == 0
    // implies global quiescence. Released on the panic path too, so
    // an aborted run's counter stays reconciled.
    ctx.fabric.pending_sub();
    if let Err(payload) = evaluated {
        ctx.fabric.stop(Status::Aborted {
            config: backend.describe(i),
            message: panic_message(payload.as_ref()),
        });
        return Turn::Stopped;
    }
    Turn::Worked
}

/// Runs one backend worker per fabric slot to quiescence (or until a
/// limit fires) and returns their reports. `backends.len()` must equal
/// [`Fabric::threads`]. Single-worker runs stay on the caller's thread:
/// deterministic, no spawn cost — and the degenerate case of the same
/// algorithm.
pub fn drive<B: BackendWorker>(
    fabric: &Fabric<B::Config, B::Msg>,
    backends: Vec<B>,
    mode: EvalMode,
    limits: &EngineLimits,
    start: Instant,
) -> Vec<WorkerReport<B>> {
    assert_eq!(
        backends.len(),
        fabric.threads(),
        "one backend worker per fabric slot"
    );
    let mut backends = backends;
    let ctx_for = |id: usize| {
        let mut trace = TraceBuffer::new(limits.trace);
        trace.set_origin(start);
        WorkerCtx::new(id, fabric, mode, limits.wake_batching, trace)
    };
    // Arm the fault plan for exactly this run: per-run counters and a
    // per-run cancel token, shared by reference across this run's
    // workers only — never with another run holding the same limits.
    let armed = limits.fault_plan.as_deref().map(ArmedFaultPlan::new);
    let armed = armed.as_ref();

    if backends.len() == 1 {
        let backend = backends.pop().expect("one worker");
        vec![run_worker(backend, ctx_for(0), limits, armed, start)]
    } else {
        std::thread::scope(|scope| {
            let handles: Vec<_> = backends
                .drain(..)
                .enumerate()
                .map(|(id, backend)| {
                    let ctx = ctx_for(id);
                    scope.spawn(move || run_worker(backend, ctx, limits, armed, start))
                })
                .collect();
            // Machine panics are contained inside run_worker, so a
            // worker thread dying here means a fabric bug — still, the
            // run (and the process) must survive it: record the abort
            // *immediately* so the remaining workers observe the done
            // flag and drain instead of spinning on work the dead
            // worker will never release, then keep joining. The dead
            // worker's report (its replica, its counters) is lost; the
            // partial result is assembled from the survivors.
            let mut reports = Vec::with_capacity(handles.len());
            for h in handles {
                match h.join() {
                    Ok(report) => reports.push(report),
                    Err(payload) => fabric.stop(Status::Aborted {
                        config: "<worker>".to_owned(),
                        message: panic_message(payload.as_ref()),
                    }),
                }
            }
            reports
        })
    }
}

//! A fast non-cryptographic hasher for the interning hot path.
//!
//! The engine's profile is dominated by hashing deep keys — binding
//! environments, call strings, whole configurations — on every intern
//! and every dependency lookup. `std`'s default SipHash is designed for
//! HashDoS resistance, which internal analysis tables do not need; this
//! is the Fx multiply-rotate hash used by rustc, typically several times
//! faster on short structured keys.
//!
//! Only the rebuilt engine uses it ([`crate::store`] pools and the
//! worklist's config index); the retained reference engine keeps the
//! standard hasher, exactly as the original code shipped.

use std::hash::{BuildHasherDefault, Hasher};

/// The Fx multiply-rotate hasher (word-at-a-time, not DoS-resistant).
#[derive(Default, Clone, Debug)]
pub struct FxHasher {
    hash: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: &T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn equal_values_hash_equal() {
        let a = vec![(1u32, "x"), (2, "y")];
        let b = vec![(1u32, "x"), (2, "y")];
        assert_eq!(hash_of(&a), hash_of(&b));
    }

    #[test]
    fn maps_work_end_to_end() {
        let mut m: FxHashMap<String, usize> = FxHashMap::default();
        for i in 0..1000 {
            m.insert(format!("key-{i}"), i);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m.get("key-500"), Some(&500));
    }

    #[test]
    fn distributes_small_ints() {
        // Not a statistical test — just guard against a degenerate
        // implementation mapping everything to one bucket.
        let hashes: std::collections::BTreeSet<u64> = (0u64..64).map(|i| hash_of(&i)).collect();
        assert_eq!(hashes.len(), 64);
    }
}

//! k-CFA: Shivers's shared-environment abstract interpreter (§3.4–3.7).
//!
//! Abstract states are `(call, β̂, σ̂, t̂)`; this module implements the
//! single-threaded-store formulation of §3.7 on top of the generic
//! worklist engine. The crucial representation choice — the one the paper
//! shows is responsible for EXPTIME-hardness — is that binding
//! environments are **maps** from variables to addresses ([`BEnvK`]):
//! a closure may mix bindings from *different* contexts, so the number of
//! distinct abstract environments can be exponential in program size.
//!
//! `k` is a runtime parameter; `k = 0` gives the classic context-
//! insensitive 0CFA.
//!
//! # Examples
//!
//! ```
//! use cfa_core::kcfa::analyze_kcfa;
//! use cfa_core::engine::EngineLimits;
//!
//! let p = cfa_syntax::compile("(define (id x) x) (id 42)").unwrap();
//! let result = analyze_kcfa(&p, 1, EngineLimits::default());
//! assert!(result.metrics.status.is_complete());
//! assert!(result.metrics.halt_values.contains("42"));
//! ```

use crate::domain::{AVal, AbsBasic, CallString};
use crate::engine::{
    run_fixpoint, AbstractMachine, DeltaFlow, EngineLimits, FixpointResult, TrackedStore,
};
use crate::fxhash::FxHashSet;
use crate::prim::{classify, PrimSpec};
use crate::reference::{RefTrackedStore, ReferenceMachine};
use crate::results::Metrics;
use crate::store::{Flow, FlowSet};
use cfa_concrete::base::Slot;
use cfa_syntax::cps::{AExp, CallId, CallKind, CpsProgram, LamId, LamSort};
use cfa_syntax::intern::Symbol;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::Arc;

/// A k-CFA abstract address: slot × abstract time (`Var × Callᵏ`).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct AddrK {
    /// What is stored.
    pub slot: Slot,
    /// The abstract binding time.
    pub time: CallString,
}

/// A k-CFA binding environment: a *map* from variables to addresses,
/// stored as a sorted vector behind `Arc`, with its structural hash
/// **precomputed at construction**.
///
/// Structural equality/ordering means environments are compared by
/// meaning. The map-ness is the point: unlike m-CFA environments, two
/// variables in one `BEnvK` may carry different binding times.
///
/// Environments are the deepest keys on the hot path — every config
/// intern, closure intern, and entry-env metric insert hashes one — so
/// re-walking the binding vector per hash would dominate the profile.
/// The cached hash makes those O(1), and equality gets an `Arc` pointer
/// fast path plus a cheap hash-mismatch early exit.
#[derive(Clone, Debug)]
pub struct BEnvK {
    hash: u64,
    items: Arc<Vec<(Symbol, AddrK)>>,
}

impl Default for BEnvK {
    fn default() -> Self {
        Self::from_items(Vec::new())
    }
}

impl PartialEq for BEnvK {
    fn eq(&self, other: &Self) -> bool {
        self.hash == other.hash
            && (Arc::ptr_eq(&self.items, &other.items) || self.items == other.items)
    }
}

impl Eq for BEnvK {}

impl PartialOrd for BEnvK {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BEnvK {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.items.cmp(&other.items)
    }
}

impl std::hash::Hash for BEnvK {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        state.write_u64(self.hash);
    }
}

impl BEnvK {
    fn from_items(items: Vec<(Symbol, AddrK)>) -> Self {
        use std::hash::{Hash as _, Hasher as _};
        let mut h = crate::fxhash::FxHasher::default();
        items.hash(&mut h);
        BEnvK {
            hash: h.finish(),
            items: Arc::new(items),
        }
    }

    /// The empty environment.
    pub fn empty() -> Self {
        Self::default()
    }

    /// Looks up a variable.
    pub fn get(&self, v: Symbol) -> Option<&AddrK> {
        self.items
            .binary_search_by_key(&v, |(s, _)| *s)
            .ok()
            .map(|i| &self.items[i].1)
    }

    /// Functional extension (later bindings shadow earlier ones).
    pub fn extend(&self, bindings: impl IntoIterator<Item = (Symbol, AddrK)>) -> BEnvK {
        let mut v: Vec<(Symbol, AddrK)> = (*self.items).clone();
        for (sym, addr) in bindings {
            match v.binary_search_by_key(&sym, |(s, _)| *s) {
                Ok(i) => v[i].1 = addr,
                Err(i) => v.insert(i, (sym, addr)),
            }
        }
        Self::from_items(v)
    }

    /// Restriction to a sorted variable set — what a closure captures.
    pub fn restrict(&self, vars: &[Symbol]) -> BEnvK {
        let mut v = Vec::with_capacity(vars.len());
        for &var in vars {
            if let Some(addr) = self.get(var) {
                v.push((var, addr.clone()));
            }
        }
        Self::from_items(v)
    }

    /// Iterates over the bindings in symbol order.
    pub fn iter(&self) -> impl Iterator<Item = (Symbol, &AddrK)> {
        self.items.iter().map(|(s, a)| (*s, a))
    }

    /// Number of bindings.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the environment is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

/// A k-CFA abstract value.
pub type ValK = AVal<BEnvK, AddrK>;

/// A k-CFA configuration: the store-less state component `(call, β̂, t̂, θ̂)`.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct KConfig {
    /// Current call site.
    pub call: CallId,
    /// Current binding environment.
    pub benv: BEnvK,
    /// Current abstract time.
    pub time: CallString,
    /// The abstract thread id: the bounded string of spawn-site labels
    /// that created this thread (empty for the main thread). This is the
    /// bounded-thread-pool component: at most `max(k,1)` spawn sites are
    /// remembered, so the abstract thread pool is finite.
    pub tid: CallString,
}

/// The k-CFA abstract machine (drives the generic engine).
#[derive(Debug)]
pub struct KCfaMachine<'p> {
    program: crate::ProgramSource<'p>,
    k: usize,
    /// Per call site: operator λ-flow and whether a non-closure flowed.
    operator_flows: HashMap<CallId, (BTreeSet<LamId>, bool)>,
    /// Log of (λ, entry environment) pairs; deduplicated once when
    /// metrics are built (a hot-path set insert per application was the
    /// single largest cost in the profile).
    lam_entry_envs: Vec<(LamId, BEnvK)>,
    /// Values reaching `%halt`.
    halt_values: BTreeSet<ValK>,
    /// Hash-consed environments: structurally equal environments share
    /// one `Arc`, so equality checks on the hot path are pointer
    /// comparisons. Only the interned-engine path canonicalizes; the
    /// reference path keeps the original allocation behavior.
    env_pool: FxHashSet<BEnvK>,
}

/// Returns the canonical (shared) copy of `env`, interning it on first
/// sight.
fn canon_env(pool: &mut FxHashSet<BEnvK>, env: BEnvK) -> BEnvK {
    match pool.get(&env) {
        Some(e) => e.clone(),
        None => {
            pool.insert(env.clone());
            env
        }
    }
}

impl<'p> KCfaMachine<'p> {
    /// Creates a machine analyzing `program` with context depth `k`.
    pub fn new(program: &'p CpsProgram, k: usize) -> Self {
        Self::from_source(crate::ProgramSource::Borrowed(program), k)
    }

    /// Creates a `'static` machine holding shared ownership of
    /// `program` — the form [`crate::pool::AnalysisPool`] tenants need,
    /// since they outlive the submitting stack frame.
    pub fn new_owned(program: Arc<CpsProgram>, k: usize) -> KCfaMachine<'static> {
        KCfaMachine::from_source(crate::ProgramSource::Owned(program), k)
    }

    fn from_source(program: crate::ProgramSource<'p>, k: usize) -> Self {
        KCfaMachine {
            program,
            k,
            operator_flows: HashMap::new(),
            lam_entry_envs: Vec::new(),
            halt_values: BTreeSet::new(),
            env_pool: FxHashSet::default(),
        }
    }

    fn tick(&self, label: cfa_syntax::cps::Label, time: &CallString) -> CallString {
        time.push(label, self.k)
    }

    /// Bound on the abstract thread-id string. At least 1 even for
    /// k = 0, so spawned threads stay distinct from the main thread.
    pub(crate) fn tid_bound(&self) -> usize {
        self.k.max(1)
    }

    /// The abstract result address of the thread spawned at `label` by
    /// thread `child_tid` (the *child's* id: spawn site pushed onto the
    /// parent's id).
    fn thread_ret_addr(label: cfa_syntax::cps::Label, child_tid: &CallString) -> AddrK {
        AddrK {
            slot: Slot::ThreadRet(label),
            time: child_tid.clone(),
        }
    }

    /// `Ê(e, β̂, σ̂)` — evaluate an atom to a flow of interned value ids,
    /// split against the configuration's baseline ([`DeltaFlow`]).
    ///
    /// Variable reads hand back the store row's shared id set — no set
    /// is cloned and no value is touched; literals and λ-closures count
    /// as new only on a full (first) visit.
    fn eval(
        &mut self,
        e: &AExp,
        benv: &BEnvK,
        store: &mut TrackedStore<'_, AddrK, ValK>,
    ) -> DeltaFlow {
        match e {
            AExp::Lit(l) => DeltaFlow::constructed(
                Flow::singleton(store.intern(AVal::Basic(AbsBasic::from_lit(*l)))),
                store.first_visit(),
            ),
            AExp::Var(v) => match benv.get(*v) {
                Some(addr) => store.read_with_delta(addr),
                None => DeltaFlow::empty(),
            },
            AExp::Lam(l) => {
                let captured = canon_env(
                    &mut self.env_pool,
                    benv.restrict(self.program.free_vars(*l)),
                );
                DeltaFlow::constructed(
                    Flow::singleton(store.intern(AVal::Clo {
                        lam: *l,
                        env: captured,
                    })),
                    store.first_visit(),
                )
            }
        }
    }

    /// Applies every closure in `fset` to `args` at the new time,
    /// recording call-graph and environment metrics for `site`.
    ///
    /// Semi-naive: a closure that is *new* since the configuration's
    /// last evaluation is applied to the full argument flows; a closure
    /// already applied last time only receives the argument *deltas* —
    /// its parameter joins, environment extension, and successor were
    /// all produced before, so `new f × all args ∪ old f × new args`
    /// covers every pair the full product would. Argument flows are
    /// joined id-to-id ([`TrackedStore::join_flow`]).
    #[allow(clippy::too_many_arguments)]
    fn apply(
        &mut self,
        site: CallId,
        fset: &DeltaFlow,
        args: &[DeltaFlow],
        t_new: &CallString,
        tid: &CallString,
        store: &mut TrackedStore<'_, AddrK, ValK>,
        out: &mut Vec<KConfig>,
    ) {
        let flows = self.operator_flows.entry(site).or_default();
        for fid in fset.all.iter() {
            if let AVal::RetK { ret } = store.val(fid) {
                // A thread-return continuation: the abstract thread
                // halts here, delivering its result into the thread's
                // result address (no successor configuration). The
                // dependency tracker wakes any `%join` reading `ret`.
                let ret = ret.clone();
                if let [a] = args {
                    if fset.is_new(fid) {
                        store.join_flow(&ret, &a.all);
                    } else if a.has_new() {
                        store.join_flow(&ret, &a.new);
                        store.note_delta_apply();
                    }
                }
                continue;
            }
            let lam = match store.val(fid) {
                AVal::Clo { lam, .. } => *lam,
                _ => {
                    flows.1 = true;
                    continue;
                }
            };
            flows.0.insert(lam);
            let lam_data = self.program.lam(lam);
            if lam_data.params.len() != args.len() {
                continue;
            }
            if !fset.is_new(fid) {
                // Already-applied closure: join only the argument
                // growth into the (deterministic) parameter addresses.
                for (&p, a) in lam_data.params.iter().zip(args) {
                    if a.has_new() {
                        store.join_flow(
                            &AddrK {
                                slot: Slot::Var(p),
                                time: t_new.clone(),
                            },
                            &a.new,
                        );
                    }
                }
                store.note_delta_apply();
                continue;
            }
            let env = match store.val(fid) {
                AVal::Clo { env, .. } => env.clone(),
                _ => unreachable!("checked above"),
            };
            let bindings: Vec<(Symbol, AddrK)> = lam_data
                .params
                .iter()
                .map(|&p| {
                    (
                        p,
                        AddrK {
                            slot: Slot::Var(p),
                            time: t_new.clone(),
                        },
                    )
                })
                .collect();
            for ((_, addr), values) in bindings.iter().zip(args) {
                store.join_flow(addr, &values.all);
            }
            let extended = canon_env(&mut self.env_pool, env.extend(bindings));
            self.lam_entry_envs.push((lam, extended.clone()));
            out.push(KConfig {
                call: lam_data.body,
                benv: extended,
                time: t_new.clone(),
                tid: tid.clone(),
            });
        }
    }
}

impl<'p> AbstractMachine for KCfaMachine<'p> {
    type Config = KConfig;
    type Addr = AddrK;
    type Val = ValK;

    fn initial(&self) -> KConfig {
        KConfig {
            call: self.program.entry(),
            benv: BEnvK::empty(),
            time: CallString::empty(),
            tid: CallString::empty(),
        }
    }

    fn step(
        &mut self,
        config: &KConfig,
        store: &mut TrackedStore<'_, AddrK, ValK>,
        out: &mut Vec<KConfig>,
    ) {
        // Clone the source (a reference copy or an `Arc` bump) so
        // `call_data` borrows the local, not `self` — `eval`/`tick`
        // below need `&mut self`.
        let program = self.program.clone();
        let call_data = program.call(config.call);
        match &call_data.kind {
            CallKind::App { func, args } => {
                let fset = self.eval(func, &config.benv, store);
                let arg_sets: Vec<DeltaFlow> = args
                    .iter()
                    .map(|a| self.eval(a, &config.benv, store))
                    .collect();
                let t_new = self.tick(call_data.label, &config.time);
                self.apply(
                    config.call,
                    &fset,
                    &arg_sets,
                    &t_new,
                    &config.tid,
                    store,
                    out,
                );
            }
            CallKind::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let cset = self.eval(cond, &config.benv, store).all;
                let truthy = cset.iter().any(|id| store.val(id).maybe_truthy());
                let falsy = cset.iter().any(|id| store.val(id).maybe_falsy());
                if truthy {
                    out.push(KConfig {
                        call: *then_branch,
                        ..config.clone()
                    });
                }
                if falsy {
                    out.push(KConfig {
                        call: *else_branch,
                        ..config.clone()
                    });
                }
            }
            CallKind::PrimCall { op, args, cont } => {
                let arg_sets: Vec<DeltaFlow> = args
                    .iter()
                    .map(|a| self.eval(a, &config.benv, store))
                    .collect();
                let kset = self.eval(cont, &config.benv, store);
                let t_new = self.tick(call_data.label, &config.time);
                let first = store.first_visit();
                let mut result_ids: Vec<u32> = Vec::new();
                let mut result_new_ids: Vec<u32> = Vec::new();
                match classify(*op) {
                    PrimSpec::Abort => return,
                    PrimSpec::Basics(bs) => {
                        result_ids.extend(bs.iter().map(|b| store.intern(AVal::Basic(*b))));
                        if first {
                            result_new_ids.extend_from_slice(&result_ids);
                        }
                    }
                    PrimSpec::AllocPair => {
                        let car = AddrK {
                            slot: Slot::Car(call_data.label),
                            time: t_new.clone(),
                        };
                        let cdr = AddrK {
                            slot: Slot::Cdr(call_data.label),
                            time: t_new.clone(),
                        };
                        // The cell addresses are deterministic, so a
                        // re-evaluation only forwards the argument
                        // growth into them.
                        if let Some(vals) = arg_sets.first() {
                            if first || vals.has_new() {
                                store.join_flow(&car, if first { &vals.all } else { &vals.new });
                            }
                        }
                        if let Some(vals) = arg_sets.get(1) {
                            if first || vals.has_new() {
                                store.join_flow(&cdr, if first { &vals.all } else { &vals.new });
                            }
                        }
                        let pid = store.intern(AVal::Pair { car, cdr });
                        result_ids.push(pid);
                        if first {
                            result_new_ids.push(pid);
                        }
                    }
                    PrimSpec::ReadCar | PrimSpec::ReadCdr => {
                        let want_car = classify(*op) == PrimSpec::ReadCar;
                        if let Some(vals) = arg_sets.first() {
                            for vid in vals.all.iter() {
                                let addr = match store.val(vid) {
                                    AVal::Pair { car, cdr } => {
                                        if want_car {
                                            car.clone()
                                        } else {
                                            cdr.clone()
                                        }
                                    }
                                    _ => continue,
                                };
                                // A new pair contributes its full cell;
                                // an old pair only the cell's growth.
                                let cell = store.read_with_delta(&addr);
                                result_ids.extend(cell.all.iter());
                                if vals.is_new(vid) {
                                    result_new_ids.extend(cell.all.iter());
                                } else {
                                    result_new_ids.extend(cell.new.iter());
                                }
                            }
                        }
                    }
                    PrimSpec::AllocAtom => {
                        let cell = AddrK {
                            slot: Slot::Atom(call_data.label),
                            time: t_new.clone(),
                        };
                        if let Some(vals) = arg_sets.first() {
                            if first || vals.has_new() {
                                store.join_flow(&cell, if first { &vals.all } else { &vals.new });
                            }
                        }
                        let aid = store.intern(AVal::Atom { cell });
                        result_ids.push(aid);
                        if first {
                            result_new_ids.push(aid);
                        }
                    }
                    PrimSpec::ReadAtom => {
                        if let Some(vals) = arg_sets.first() {
                            for vid in vals.all.iter() {
                                let addr = match store.val(vid) {
                                    AVal::Atom { cell } => cell.clone(),
                                    _ => continue,
                                };
                                let cell = store.read_with_delta(&addr);
                                result_ids.extend(cell.all.iter());
                                if vals.is_new(vid) {
                                    result_new_ids.extend(cell.all.iter());
                                } else {
                                    result_new_ids.extend(cell.new.iter());
                                }
                            }
                        }
                    }
                    PrimSpec::WriteAtom => {
                        // (reset! a v): the abstract store is monotone,
                        // so the overwrite is a join into every cell
                        // reaching `a`; the result is `v` itself.
                        if let (Some(atoms), Some(vals)) = (arg_sets.first(), arg_sets.get(1)) {
                            for vid in atoms.all.iter() {
                                let addr = match store.val(vid) {
                                    AVal::Atom { cell } => cell.clone(),
                                    _ => continue,
                                };
                                if atoms.is_new(vid) {
                                    store.join_flow(&addr, &vals.all);
                                } else if vals.has_new() {
                                    store.join_flow(&addr, &vals.new);
                                }
                            }
                            result_ids.extend(vals.all.iter());
                            result_new_ids.extend(vals.new.iter());
                        }
                    }
                    PrimSpec::CasAtom => {
                        // (cas! a expected new): the swap may or may not
                        // happen abstractly — join the replacement into
                        // the cell and produce bool⊤.
                        if let (Some(atoms), Some(news)) = (arg_sets.first(), arg_sets.get(2)) {
                            for vid in atoms.all.iter() {
                                let addr = match store.val(vid) {
                                    AVal::Atom { cell } => cell.clone(),
                                    _ => continue,
                                };
                                if atoms.is_new(vid) {
                                    store.join_flow(&addr, &news.all);
                                } else if news.has_new() {
                                    store.join_flow(&addr, &news.new);
                                }
                            }
                        }
                        let bid = store.intern(AVal::Basic(AbsBasic::AnyBool));
                        result_ids.push(bid);
                        if first {
                            result_new_ids.push(bid);
                        }
                    }
                }
                if !result_ids.is_empty() {
                    let results = DeltaFlow {
                        all: Flow::from_ids(result_ids),
                        new: Flow::from_ids(result_new_ids),
                    };
                    // All-new results ⇒ the previous evaluation may
                    // have had none, so the continuations were never
                    // applied — run them in full.
                    let kset = kset.upgraded_if_all_new(&results);
                    self.apply(
                        config.call,
                        &kset,
                        &[results],
                        &t_new,
                        &config.tid,
                        store,
                        out,
                    );
                }
            }
            CallKind::Fix { bindings, body } => {
                let t_new = self.tick(call_data.label, &config.time);
                let addrs: Vec<(Symbol, AddrK)> = bindings
                    .iter()
                    .map(|(name, _)| {
                        (
                            *name,
                            AddrK {
                                slot: Slot::Var(*name),
                                time: t_new.clone(),
                            },
                        )
                    })
                    .collect();
                let extended = canon_env(
                    &mut self.env_pool,
                    config.benv.extend(addrs.iter().cloned()),
                );
                for ((_, lam), (_, addr)) in bindings.iter().zip(&addrs) {
                    let captured = canon_env(
                        &mut self.env_pool,
                        extended.restrict(self.program.free_vars(*lam)),
                    );
                    store.join(
                        addr,
                        [AVal::Clo {
                            lam: *lam,
                            env: captured,
                        }],
                    );
                }
                out.push(KConfig {
                    call: *body,
                    benv: extended,
                    time: t_new,
                    tid: config.tid.clone(),
                });
            }
            CallKind::Spawn { thunk, cont } => {
                let tset = self.eval(thunk, &config.benv, store);
                let kset = self.eval(cont, &config.benv, store);
                let t_new = self.tick(call_data.label, &config.time);
                let child_tid = config.tid.push(call_data.label, self.tid_bound());
                let ret = Self::thread_ret_addr(call_data.label, &child_tid);
                let first = store.first_visit();
                // Child: every thunk closure starts a new abstract
                // thread whose continuation is the thread-return
                // continuation for `ret`; its successors carry the
                // child's thread id.
                let retk_id = store.intern(AVal::RetK { ret: ret.clone() });
                let retk = DeltaFlow::constructed(Flow::singleton(retk_id), first);
                self.apply(config.call, &tset, &[retk], &t_new, &child_tid, store, out);
                // Parent: continues immediately with the thread handle.
                let tid_id = store.intern(AVal::Tid { ret });
                let handle = DeltaFlow::constructed(Flow::singleton(tid_id), first);
                self.apply(
                    config.call,
                    &kset,
                    &[handle],
                    &t_new,
                    &config.tid,
                    store,
                    out,
                );
            }
            CallKind::Join { target, cont } => {
                let tset = self.eval(target, &config.benv, store);
                let kset = self.eval(cont, &config.benv, store);
                let t_new = self.tick(call_data.label, &config.time);
                let mut result_ids: Vec<u32> = Vec::new();
                let mut result_new_ids: Vec<u32> = Vec::new();
                for vid in tset.all.iter() {
                    let ret = match store.val(vid) {
                        AVal::Tid { ret } => ret.clone(),
                        _ => continue,
                    };
                    // Reading `ret` registers a dependency: if the
                    // child has produced nothing yet, this config is
                    // re-woken when it does — blocking for free.
                    let cell = store.read_with_delta(&ret);
                    result_ids.extend(cell.all.iter());
                    if tset.is_new(vid) {
                        result_new_ids.extend(cell.all.iter());
                    } else {
                        result_new_ids.extend(cell.new.iter());
                    }
                }
                if !result_ids.is_empty() {
                    let results = DeltaFlow {
                        all: Flow::from_ids(result_ids),
                        new: Flow::from_ids(result_new_ids),
                    };
                    let kset = kset.upgraded_if_all_new(&results);
                    self.apply(
                        config.call,
                        &kset,
                        &[results],
                        &t_new,
                        &config.tid,
                        store,
                        out,
                    );
                }
            }
            CallKind::Halt { value } => {
                // Only the growth is new to the accumulator; the rest
                // was recorded by this configuration's earlier visits
                // (re-evaluations stay on the worker that owns the
                // accumulator — configurations are pinned).
                let vals = self.eval(value, &config.benv, store);
                self.halt_values.extend(store.materialize(&vals.new));
            }
        }
    }
}

impl<'p> crate::parallel::ParallelMachine for KCfaMachine<'p> {
    fn fork(&self) -> Self {
        KCfaMachine::from_source(self.program.clone(), self.k)
    }

    fn absorb(&mut self, worker: Self) {
        for (site, (lams, saw_non_clo)) in worker.operator_flows {
            let entry = self.operator_flows.entry(site).or_default();
            entry.0.extend(lams);
            entry.1 |= saw_non_clo;
        }
        self.lam_entry_envs.extend(worker.lam_entry_envs);
        self.halt_values.extend(worker.halt_values);
        // `env_pool` is a worker-local hash-consing cache; nothing to
        // keep.
    }
}

// ---------------------------------------------------------------------
// Reference (pre-interning) semantics — the differential oracle
// ---------------------------------------------------------------------

impl<'p> KCfaMachine<'p> {
    /// The original value-level `Ê`, kept for [`ReferenceMachine`] and
    /// reused by the race detector's post-fixpoint fact extraction.
    pub(crate) fn eval_ref(
        &self,
        e: &AExp,
        benv: &BEnvK,
        store: &mut RefTrackedStore<'_, AddrK, ValK>,
    ) -> FlowSet<ValK> {
        match e {
            AExp::Lit(l) => std::iter::once(AVal::Basic(AbsBasic::from_lit(*l))).collect(),
            AExp::Var(v) => match benv.get(*v) {
                Some(addr) => store.read(&addr.clone()),
                None => FlowSet::new(),
            },
            AExp::Lam(l) => {
                let captured = benv.restrict(self.program.free_vars(*l));
                std::iter::once(AVal::Clo {
                    lam: *l,
                    env: captured,
                })
                .collect()
            }
        }
    }

    /// The original value-level apply, kept for [`ReferenceMachine`].
    #[allow(clippy::too_many_arguments)]
    fn apply_ref(
        &mut self,
        site: CallId,
        fset: &FlowSet<ValK>,
        args: &[FlowSet<ValK>],
        t_new: &CallString,
        tid: &CallString,
        store: &mut RefTrackedStore<'_, AddrK, ValK>,
        out: &mut Vec<KConfig>,
    ) {
        let flows = self.operator_flows.entry(site).or_default();
        for f in fset {
            if let AVal::RetK { ret } = f {
                // Thread-return continuation: deliver the result, no
                // successor (the abstract thread halts).
                if let [a] = args {
                    store.join(ret.clone(), a.iter().cloned());
                }
                continue;
            }
            let AVal::Clo { lam, env } = f else {
                flows.1 = true;
                continue;
            };
            flows.0.insert(*lam);
            let lam_data = self.program.lam(*lam);
            if lam_data.params.len() != args.len() {
                continue;
            }
            let bindings: Vec<(Symbol, AddrK)> = lam_data
                .params
                .iter()
                .map(|&p| {
                    (
                        p,
                        AddrK {
                            slot: Slot::Var(p),
                            time: t_new.clone(),
                        },
                    )
                })
                .collect();
            for ((_, addr), values) in bindings.iter().zip(args) {
                store.join(addr.clone(), values.iter().cloned());
            }
            let extended = env.extend(bindings);
            self.lam_entry_envs.push((*lam, extended.clone()));
            out.push(KConfig {
                call: lam_data.body,
                benv: extended,
                time: t_new.clone(),
                tid: tid.clone(),
            });
        }
    }
}

impl<'p> ReferenceMachine for KCfaMachine<'p> {
    type Config = KConfig;
    type Addr = AddrK;
    type Val = ValK;

    fn initial(&self) -> KConfig {
        AbstractMachine::initial(self)
    }

    fn step(
        &mut self,
        config: &KConfig,
        store: &mut RefTrackedStore<'_, AddrK, ValK>,
        out: &mut Vec<KConfig>,
    ) {
        // Clone the source (a reference copy or an `Arc` bump) so
        // `call_data` borrows the local, not `self` — `eval`/`tick`
        // below need `&mut self`.
        let program = self.program.clone();
        let call_data = program.call(config.call);
        match &call_data.kind {
            CallKind::App { func, args } => {
                let fset = self.eval_ref(func, &config.benv, store);
                let arg_sets: Vec<FlowSet<ValK>> = args
                    .iter()
                    .map(|a| self.eval_ref(a, &config.benv, store))
                    .collect();
                let t_new = self.tick(call_data.label, &config.time);
                self.apply_ref(
                    config.call,
                    &fset,
                    &arg_sets,
                    &t_new,
                    &config.tid,
                    store,
                    out,
                );
            }
            CallKind::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let cset = self.eval_ref(cond, &config.benv, store);
                if cset.iter().any(AVal::maybe_truthy) {
                    out.push(KConfig {
                        call: *then_branch,
                        ..config.clone()
                    });
                }
                if cset.iter().any(AVal::maybe_falsy) {
                    out.push(KConfig {
                        call: *else_branch,
                        ..config.clone()
                    });
                }
            }
            CallKind::PrimCall { op, args, cont } => {
                let arg_sets: Vec<FlowSet<ValK>> = args
                    .iter()
                    .map(|a| self.eval_ref(a, &config.benv, store))
                    .collect();
                let kset = self.eval_ref(cont, &config.benv, store);
                let t_new = self.tick(call_data.label, &config.time);
                let mut results: FlowSet<ValK> = FlowSet::new();
                match classify(*op) {
                    PrimSpec::Abort => return,
                    PrimSpec::Basics(bs) => {
                        results.extend(bs.iter().map(|b| AVal::Basic(*b)));
                    }
                    PrimSpec::AllocPair => {
                        let car = AddrK {
                            slot: Slot::Car(call_data.label),
                            time: t_new.clone(),
                        };
                        let cdr = AddrK {
                            slot: Slot::Cdr(call_data.label),
                            time: t_new.clone(),
                        };
                        if let Some(vals) = arg_sets.first() {
                            store.join(car.clone(), vals.iter().cloned());
                        }
                        if let Some(vals) = arg_sets.get(1) {
                            store.join(cdr.clone(), vals.iter().cloned());
                        }
                        results.insert(AVal::Pair { car, cdr });
                    }
                    PrimSpec::ReadCar | PrimSpec::ReadCdr => {
                        let want_car = classify(*op) == PrimSpec::ReadCar;
                        if let Some(vals) = arg_sets.first() {
                            for v in vals {
                                if let AVal::Pair { car, cdr } = v {
                                    let addr = if want_car { car } else { cdr };
                                    results.extend(store.read(&addr.clone()));
                                }
                            }
                        }
                    }
                    PrimSpec::AllocAtom => {
                        let cell = AddrK {
                            slot: Slot::Atom(call_data.label),
                            time: t_new.clone(),
                        };
                        if let Some(vals) = arg_sets.first() {
                            store.join(cell.clone(), vals.iter().cloned());
                        }
                        results.insert(AVal::Atom { cell });
                    }
                    PrimSpec::ReadAtom => {
                        if let Some(vals) = arg_sets.first() {
                            for v in vals {
                                if let AVal::Atom { cell } = v {
                                    results.extend(store.read(&cell.clone()));
                                }
                            }
                        }
                    }
                    PrimSpec::WriteAtom => {
                        if let (Some(atoms), Some(vals)) = (arg_sets.first(), arg_sets.get(1)) {
                            for v in atoms {
                                if let AVal::Atom { cell } = v {
                                    store.join(cell.clone(), vals.iter().cloned());
                                }
                            }
                            results.extend(vals.iter().cloned());
                        }
                    }
                    PrimSpec::CasAtom => {
                        if let (Some(atoms), Some(news)) = (arg_sets.first(), arg_sets.get(2)) {
                            for v in atoms {
                                if let AVal::Atom { cell } = v {
                                    store.join(cell.clone(), news.iter().cloned());
                                }
                            }
                        }
                        results.insert(AVal::Basic(AbsBasic::AnyBool));
                    }
                }
                if !results.is_empty() {
                    self.apply_ref(
                        config.call,
                        &kset,
                        &[results],
                        &t_new,
                        &config.tid,
                        store,
                        out,
                    );
                }
            }
            CallKind::Fix { bindings, body } => {
                let t_new = self.tick(call_data.label, &config.time);
                let addrs: Vec<(Symbol, AddrK)> = bindings
                    .iter()
                    .map(|(name, _)| {
                        (
                            *name,
                            AddrK {
                                slot: Slot::Var(*name),
                                time: t_new.clone(),
                            },
                        )
                    })
                    .collect();
                let extended = config.benv.extend(addrs.iter().cloned());
                for ((_, lam), (_, addr)) in bindings.iter().zip(&addrs) {
                    let captured = extended.restrict(self.program.free_vars(*lam));
                    store.join(
                        addr.clone(),
                        [AVal::Clo {
                            lam: *lam,
                            env: captured,
                        }],
                    );
                }
                out.push(KConfig {
                    call: *body,
                    benv: extended,
                    time: t_new,
                    tid: config.tid.clone(),
                });
            }
            CallKind::Spawn { thunk, cont } => {
                let tset = self.eval_ref(thunk, &config.benv, store);
                let kset = self.eval_ref(cont, &config.benv, store);
                let t_new = self.tick(call_data.label, &config.time);
                let child_tid = config.tid.push(call_data.label, self.tid_bound());
                let ret = Self::thread_ret_addr(call_data.label, &child_tid);
                let retk: FlowSet<ValK> =
                    std::iter::once(AVal::RetK { ret: ret.clone() }).collect();
                self.apply_ref(config.call, &tset, &[retk], &t_new, &child_tid, store, out);
                let handle: FlowSet<ValK> = std::iter::once(AVal::Tid { ret }).collect();
                self.apply_ref(
                    config.call,
                    &kset,
                    &[handle],
                    &t_new,
                    &config.tid,
                    store,
                    out,
                );
            }
            CallKind::Join { target, cont } => {
                let tset = self.eval_ref(target, &config.benv, store);
                let kset = self.eval_ref(cont, &config.benv, store);
                let t_new = self.tick(call_data.label, &config.time);
                let mut results: FlowSet<ValK> = FlowSet::new();
                for v in &tset {
                    if let AVal::Tid { ret } = v {
                        results.extend(store.read(&ret.clone()));
                    }
                }
                if !results.is_empty() {
                    self.apply_ref(
                        config.call,
                        &kset,
                        &[results],
                        &t_new,
                        &config.tid,
                        store,
                        out,
                    );
                }
            }
            CallKind::Halt { value } => {
                let vals = self.eval_ref(value, &config.benv, store);
                self.halt_values.extend(vals);
            }
        }
    }
}

/// The full output of a k-CFA run.
#[derive(Debug)]
pub struct KcfaResult {
    /// Raw fixpoint data (configurations + store).
    pub fixpoint: FixpointResult<KConfig, AddrK, ValK>,
    /// Cross-analysis summary.
    pub metrics: Metrics,
    /// Abstract values reaching `%halt`.
    pub halt_values: BTreeSet<ValK>,
}

/// Runs k-CFA on `program` with context depth `k`.
pub fn analyze_kcfa(program: &CpsProgram, k: usize, limits: EngineLimits) -> KcfaResult {
    let mut machine = KCfaMachine::new(program, k);
    let fixpoint = run_fixpoint(&mut machine, limits);
    let metrics = build_metrics(
        format!("k-CFA(k={k})"),
        program,
        &fixpoint,
        &machine.operator_flows,
        &machine.lam_entry_envs,
        &machine.halt_values,
    );
    KcfaResult {
        fixpoint,
        metrics,
        halt_values: machine.halt_values,
    }
}

/// A pending pooled k-CFA analysis — [`submit_kcfa`]'s ticket.
#[derive(Debug)]
pub struct KcfaJob {
    handle: crate::pool::JobHandle<crate::pool::PoolRun<KCfaMachine<'static>>>,
    program: Arc<CpsProgram>,
    k: usize,
}

impl KcfaJob {
    /// Blocks until the analysis finishes and assembles the same
    /// [`KcfaResult`] the direct [`analyze_kcfa`] entry point builds.
    pub fn wait(self) -> KcfaResult {
        let run = self.handle.wait();
        let metrics = build_metrics(
            format!("k-CFA(k={})", self.k),
            &self.program,
            &run.fixpoint,
            &run.machine.operator_flows,
            &run.machine.lam_entry_envs,
            &run.machine.halt_values,
        );
        KcfaResult {
            fixpoint: run.fixpoint,
            metrics,
            halt_values: run.machine.halt_values,
        }
    }

    /// Whether the run has deposited its result ([`KcfaJob::wait`]
    /// returns without blocking).
    pub fn is_finished(&self) -> bool {
        self.handle.is_finished()
    }

    /// Requests cancellation: still-queued runs finish
    /// [`crate::engine::Status::Cancelled`] at zero iterations.
    pub fn cancel(&self) {
        self.handle.cancel();
    }
}

/// Submits a k-CFA analysis of `program` (context depth `k`) to `pool`
/// under store backend `B`, returning immediately. The pool drives it
/// to the same fixpoint [`analyze_kcfa`] computes — the fixed point of
/// a monotone transfer function is unique — while time-slicing fairly
/// against the pool's other tenants.
pub fn submit_kcfa<B: crate::pool::PoolBackend>(
    pool: &crate::pool::AnalysisPool,
    program: Arc<CpsProgram>,
    k: usize,
    limits: EngineLimits,
) -> KcfaJob {
    let machine = KCfaMachine::new_owned(Arc::clone(&program), k);
    let handle = pool.submit::<B, _>(machine, limits, crate::engine::EvalMode::SemiNaive);
    KcfaJob { handle, program, k }
}

/// Renders an abstract value for summaries (`3`, `int⊤`, `#<proc:ℓ4>`…).
pub fn render_val<E, A>(program: &CpsProgram, v: &AVal<E, A>) -> String {
    match v {
        AVal::Basic(AbsBasic::Sym(s)) => format!("'{}", program.name(*s)),
        AVal::Basic(b) => b.to_string(),
        AVal::Clo { lam, .. } => format!("#<proc:{:?}>", program.lam(*lam).label),
        AVal::Pair { .. } => "#<pair>".to_owned(),
        AVal::Tid { .. } => "#<thread>".to_owned(),
        AVal::RetK { .. } => "#<thread-return>".to_owned(),
        AVal::Atom { .. } => "#<atom>".to_owned(),
    }
}

/// Builds a [`Metrics`] summary from machine-side metric collections.
/// Shared by the k-CFA and flat-environment analyzers.
pub(crate) fn build_metrics<C, A, E1, A1, E2>(
    analysis: String,
    program: &CpsProgram,
    fixpoint: &FixpointResult<C, A, AVal<E1, A1>>,
    operator_flows: &HashMap<CallId, (BTreeSet<LamId>, bool)>,
    lam_entry_envs: &[(LamId, E2)],
    halt_values: &BTreeSet<AVal<E1, A1>>,
) -> Metrics
where
    A: std::hash::Hash + Eq + Clone,
    E1: Ord + Clone + Eq + std::hash::Hash,
    A1: Ord + Clone + Eq + std::hash::Hash,
    E2: Eq + std::hash::Hash,
{
    let mut reachable_user_calls = 0;
    let mut singleton_user_calls = 0;
    let mut call_targets = BTreeMap::new();
    for (&site, (lams, saw_non_clo)) in operator_flows {
        call_targets.insert(site, lams.clone());
        let procs: Vec<LamId> = lams
            .iter()
            .copied()
            .filter(|l| program.lam(*l).sort == LamSort::Proc)
            .collect();
        if procs.is_empty() {
            continue;
        }
        reachable_user_calls += 1;
        if procs.len() == 1 && lams.len() == 1 && !saw_non_clo {
            singleton_user_calls += 1;
        }
    }
    // Deduplicate the entry-environment log once, off the hot path.
    let distinct_envs = {
        let mut distinct: FxHashSet<&E2> = FxHashSet::default();
        distinct.extend(lam_entry_envs.iter().map(|(_, env)| env));
        distinct.len()
    };
    let lam_env_counts = crate::results::distinct_counts(lam_entry_envs);
    Metrics {
        analysis,
        status: fixpoint.status.clone(),
        elapsed: fixpoint.elapsed,
        iterations: fixpoint.iterations,
        config_count: fixpoint.config_count(),
        store_entries: fixpoint.store.len(),
        store_facts: fixpoint.store.fact_count(),
        reachable_user_calls,
        singleton_user_calls,
        call_targets,
        lam_env_counts,
        distinct_envs,
        halt_values: halt_values.iter().map(|v| render_val(program, v)).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn analyze(src: &str, k: usize) -> KcfaResult {
        let p = cfa_syntax::compile(src).unwrap();
        analyze_kcfa(&p, k, EngineLimits::default())
    }

    #[test]
    fn benv_lookup_and_extend() {
        let a0 = AddrK {
            slot: Slot::Var(Symbol::from_index(0)),
            time: CallString::empty(),
        };
        let a1 = AddrK {
            slot: Slot::Var(Symbol::from_index(1)),
            time: CallString::empty(),
        };
        let x = Symbol::from_index(0);
        let y = Symbol::from_index(1);
        let env = BEnvK::empty().extend([(y, a1.clone()), (x, a0.clone())]);
        assert_eq!(env.get(x), Some(&a0));
        assert_eq!(env.get(y), Some(&a1));
        assert_eq!(env.len(), 2);
        // Extension shadows.
        let env2 = env.extend([(x, a1.clone())]);
        assert_eq!(env2.get(x), Some(&a1));
        assert_eq!(env.get(x), Some(&a0), "original unchanged");
    }

    #[test]
    fn benv_restrict_keeps_only_requested() {
        let x = Symbol::from_index(0);
        let y = Symbol::from_index(1);
        let a = AddrK {
            slot: Slot::Var(x),
            time: CallString::empty(),
        };
        let env = BEnvK::empty().extend([(x, a.clone()), (y, a.clone())]);
        let r = env.restrict(&[x]);
        assert_eq!(r.len(), 1);
        assert!(r.get(y).is_none());
    }

    #[test]
    fn constant_program() {
        let r = analyze("42", 0);
        assert!(r.metrics.status.is_complete());
        assert_eq!(
            r.metrics.halt_values,
            ["42".to_owned()].into_iter().collect()
        );
    }

    #[test]
    fn identity_chain_flows_constant() {
        for k in [0, 1, 2] {
            let r = analyze("(define (id x) x) (id (id 42))", k);
            assert!(
                r.metrics.halt_values.contains("42"),
                "k={k}: {:?}",
                r.metrics.halt_values
            );
        }
    }

    #[test]
    fn zero_cfa_merges_identity_arguments() {
        let r = analyze("(define (id x) x) (let ((a (id 3))) (id 4))", 0);
        // Under 0CFA both 3 and 4 flow out of id.
        assert!(
            r.metrics.halt_values.contains("3"),
            "{:?}",
            r.metrics.halt_values
        );
        assert!(r.metrics.halt_values.contains("4"));
    }

    #[test]
    fn one_cfa_distinguishes_identity_arguments() {
        let r = analyze("(define (id x) x) (let ((a (id 3))) (id 4))", 1);
        assert!(
            !r.metrics.halt_values.contains("3"),
            "{:?}",
            r.metrics.halt_values
        );
        assert!(r.metrics.halt_values.contains("4"));
    }

    #[test]
    fn branches_join_both_arms() {
        let r = analyze("(if (zero? 1) 10 20)", 1);
        assert!(r.metrics.halt_values.contains("10"));
        assert!(r.metrics.halt_values.contains("20"));
    }

    #[test]
    fn literal_condition_prunes_dead_arm() {
        let r = analyze("(if #t 10 20)", 0);
        assert!(r.metrics.halt_values.contains("10"));
        assert!(
            !r.metrics.halt_values.contains("20"),
            "{:?}",
            r.metrics.halt_values
        );
    }

    #[test]
    fn recursion_terminates_abstractly() {
        let r = analyze(
            "(define (count n) (if (zero? n) 0 (count (- n 1)))) (count 100)",
            1,
        );
        assert!(r.metrics.status.is_complete());
        // The base case returns the literal 0; the recursive tower collapses
        // int arithmetic to int⊤.
        assert!(
            r.metrics.halt_values.contains("0"),
            "{:?}",
            r.metrics.halt_values
        );
    }

    #[test]
    fn arithmetic_widens() {
        let r = analyze("(+ 1 2)", 0);
        assert!(r.metrics.halt_values.contains("int⊤"));
    }

    #[test]
    fn pairs_flow_through_store() {
        let r = analyze("(car (cons 41 99))", 1);
        assert!(
            r.metrics.halt_values.contains("41"),
            "{:?}",
            r.metrics.halt_values
        );
        assert!(!r.metrics.halt_values.contains("99"));
    }

    #[test]
    fn higher_order_flow_is_tracked() {
        let r = analyze(
            "(define (apply-to-ten f) (f 10))
             (apply-to-ten (lambda (n) n))",
            1,
        );
        assert!(r.metrics.halt_values.contains("10"));
        // The call (f 10) must have exactly one target.
        assert!(r.metrics.singleton_user_calls >= 1);
    }

    #[test]
    fn call_targets_capture_dispatch() {
        let r = analyze(
            "(define (pick b f g) (if b (f 1) (g 2)))
             (pick #t (lambda (x) x) (lambda (y) y))",
            0,
        );
        assert!(r.metrics.reachable_user_calls >= 2);
    }

    #[test]
    fn env_counts_recorded() {
        let r = analyze("(define (id x) x) (let ((a (id 1))) (id 2))", 1);
        assert!(r.metrics.total_env_count() > 0);
    }

    #[test]
    fn deeper_k_refines_or_equals_halt_sets() {
        // Monotone precision on a simple program: halt set for k=2 must be a
        // subset of k=0's.
        let coarse = analyze("(define (id x) x) (let ((a (id 3))) (id 4))", 0);
        let fine = analyze("(define (id x) x) (let ((a (id 3))) (id 4))", 2);
        assert!(fine
            .metrics
            .halt_values
            .is_subset(&coarse.metrics.halt_values));
    }

    #[test]
    fn error_prim_halts_flow() {
        let r = analyze("(error 'boom)", 0);
        assert!(r.metrics.halt_values.is_empty());
        assert!(r.metrics.status.is_complete());
    }

    #[test]
    fn spawn_join_flows_thread_result() {
        for k in [0, 1, 2] {
            let r = analyze("(join (spawn 42))", k);
            assert!(r.metrics.status.is_complete());
            assert!(
                r.metrics.halt_values.contains("42"),
                "k={k}: {:?}",
                r.metrics.halt_values
            );
        }
    }

    #[test]
    fn atom_cells_accumulate_writes() {
        let r = analyze("(let ((c (atom 1))) (deref c))", 1);
        assert!(r.metrics.halt_values.contains("1"));
        let r = analyze(
            "(let ((c (atom 0))) (let ((t (spawn (reset! c 5)))) (join t) (deref c)))",
            1,
        );
        // The abstract cell holds both the initial value and the write.
        assert!(
            r.metrics.halt_values.contains("5"),
            "{:?}",
            r.metrics.halt_values
        );
        assert!(r.metrics.halt_values.contains("0"));
    }

    #[test]
    fn cas_widens_to_any_bool() {
        let r = analyze("(let ((c (atom 0))) (cas! c 0 1))", 0);
        assert!(
            r.metrics.halt_values.contains("bool⊤"),
            "{:?}",
            r.metrics.halt_values
        );
    }

    #[test]
    fn spawned_threads_get_distinct_tids_even_at_k0() {
        let p = cfa_syntax::compile("(join (spawn 7))").unwrap();
        let r = analyze_kcfa(&p, 0, EngineLimits::default());
        let tids: std::collections::BTreeSet<CallString> =
            r.fixpoint.configs.iter().map(|c| c.tid.clone()).collect();
        assert!(tids.len() >= 2, "main + child expected: {tids:?}");
    }

    #[test]
    fn iteration_limit_reports_incomplete() {
        let r = {
            let p = cfa_syntax::compile("(define (f x) (f x)) (f (lambda (y) y))").unwrap();
            analyze_kcfa(&p, 1, EngineLimits::iterations(2))
        };
        assert!(!r.metrics.status.is_complete());
    }
}

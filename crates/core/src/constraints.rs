//! Constraint-based 0CFA — an independent implementation for
//! cross-validation.
//!
//! The paper contrasts the abstract-interpretation formulation of CFA
//! with the declarative one used by the points-to community ("express
//! the algorithm in Datalog", §1). This module is that other road: a
//! whole-program, flow-insensitive, set-constraint 0CFA in the style of
//! Andersen's analysis / Datalog points-to:
//!
//! * one flow node per variable, per `cons`-site field, and for `%halt`;
//! * unconditional subset edges for bindings;
//! * conditional rules (application, projection) triggered as operator
//!   and pair nodes grow.
//!
//! Because it analyzes the *whole* program without reachability or
//! branch pruning, its result is a (possibly strict) over-approximation
//! of the worklist `k = 0` analysis of [`crate::kcfa`] — which is
//! exactly what the cross-validation tests assert.

use crate::domain::AbsBasic;
use crate::prim::{classify, PrimSpec};
use cfa_syntax::cps::{AExp, CallKind, CpsProgram, Label, LamId};
use cfa_syntax::intern::Symbol;
use std::collections::{BTreeSet, HashMap, VecDeque};

/// A context-insensitive abstract value.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Val0 {
    /// A λ-term.
    Lam(LamId),
    /// A constant.
    Basic(AbsBasic),
    /// A pair allocated at this `cons` site.
    Pair(Label),
    /// A thread handle (context-insensitive: all spawns collapse).
    Tid,
    /// A thread-return continuation.
    RetK,
    /// An atom allocated at this `atom` site.
    Atom(Label),
}

/// A flow node.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Node {
    /// The flow set of a variable.
    Var(Symbol),
    /// The car field of the pairs allocated at a site.
    Car(Label),
    /// The cdr field of the pairs allocated at a site.
    Cdr(Label),
    /// Values reaching `%halt`.
    Halt,
    /// Results of *every* thread, merged. Context-insensitive 0CFA
    /// cannot tell spawn sites apart without per-site nodes, and the
    /// cross-validation contract only needs an over-approximation, so
    /// one global node is the simplest sound choice.
    ThreadRet,
    /// Contents of *every* atom cell, merged (same rationale).
    AtomCell,
}

/// The solved constraint system.
#[derive(Debug)]
pub struct ZeroCfa {
    flows: HashMap<Node, BTreeSet<Val0>>,
    /// Number of propagation steps taken by the solver.
    pub propagations: u64,
}

impl ZeroCfa {
    /// The flow set of a node (`⊥` if absent).
    pub fn flow(&self, node: Node) -> BTreeSet<Val0> {
        self.flows.get(&node).cloned().unwrap_or_default()
    }

    /// The flow set of a variable.
    pub fn var_flow(&self, v: Symbol) -> BTreeSet<Val0> {
        self.flow(Node::Var(v))
    }

    /// Values reaching `%halt`.
    pub fn halt_flow(&self) -> BTreeSet<Val0> {
        self.flow(Node::Halt)
    }

    /// Total number of `(node, value)` facts.
    pub fn fact_count(&self) -> usize {
        self.flows.values().map(BTreeSet::len).sum()
    }
}

/// Solves the 0CFA constraint system for `program`.
pub fn solve_zerocfa(program: &CpsProgram) -> ZeroCfa {
    Solver::new(program).run()
}

struct Solver<'p> {
    program: &'p CpsProgram,
    flows: HashMap<Node, BTreeSet<Val0>>,
    /// Subset edges `from ⊆ to`.
    edges: HashMap<Node, Vec<Node>>,
    /// Call sites whose operator node should re-fire when it grows:
    /// node → (argument nodes/consts, parameter binding thunk inputs).
    apply_triggers: HashMap<Node, Vec<ApplyRule>>,
    /// Projection rules triggered by pair values.
    proj_triggers: HashMap<Node, Vec<ProjRule>>,
    worklist: VecDeque<Node>,
    propagations: u64,
}

/// `for each Lam(l) in flow(operator): args_i ⊆ param_i(l)`.
#[derive(Clone, Debug)]
struct ApplyRule {
    args: Vec<Rhs>,
}

/// `for each Pair(s) in flow(scrutinee): field(s) ⊆ target`.
#[derive(Clone, Debug)]
struct ProjRule {
    want_car: bool,
    target: Rhs,
}

/// The right-hand side of a flow: either a node or an atom's direct
/// value set.
#[derive(Clone, Debug)]
enum Rhs {
    Node(Node),
    Consts(BTreeSet<Val0>),
    /// Flow into whatever closures arrive at this continuation atom.
    IntoCont(Box<Rhs>, Node),
}

impl<'p> Solver<'p> {
    fn new(program: &'p CpsProgram) -> Self {
        Solver {
            program,
            flows: HashMap::new(),
            edges: HashMap::new(),
            apply_triggers: HashMap::new(),
            proj_triggers: HashMap::new(),
            worklist: VecDeque::new(),
            propagations: 0,
        }
    }

    /// The value set / node of an atom.
    fn atom(&self, e: &AExp) -> Rhs {
        match e {
            AExp::Var(v) => Rhs::Node(Node::Var(*v)),
            AExp::Lam(l) => Rhs::Consts(std::iter::once(Val0::Lam(*l)).collect()),
            AExp::Lit(l) => {
                Rhs::Consts(std::iter::once(Val0::Basic(AbsBasic::from_lit(*l))).collect())
            }
        }
    }

    fn add_values(&mut self, node: Node, values: impl IntoIterator<Item = Val0>) {
        let set = self.flows.entry(node).or_default();
        let before = set.len();
        set.extend(values);
        if set.len() != before {
            self.worklist.push_back(node);
        }
    }

    fn add_edge(&mut self, from: Node, to: Node) {
        self.edges.entry(from).or_default().push(to);
        // Propagate anything already present.
        let existing = self.flows.get(&from).cloned().unwrap_or_default();
        if !existing.is_empty() {
            self.add_values(to, existing);
        }
    }

    /// Connects an RHS into a node.
    fn flow_rhs(&mut self, rhs: &Rhs, to: Node) {
        match rhs {
            Rhs::Node(n) => self.add_edge(*n, to),
            Rhs::Consts(vals) => self.add_values(to, vals.iter().copied()),
            Rhs::IntoCont(..) => unreachable!("IntoCont only appears as a rule target"),
        }
    }

    /// Registers `rhs` to flow into the first parameter of every closure
    /// reaching `cont`.
    fn flow_into_cont(&mut self, cont: &AExp, rhs: Rhs) {
        match cont {
            AExp::Lam(l) => {
                let lam = self.program.lam(*l);
                if let Some(&param) = lam.params.first() {
                    self.flow_rhs(&rhs, Node::Var(param));
                }
            }
            AExp::Var(k) => {
                let rule = ApplyRule { args: vec![rhs] };
                self.apply_triggers
                    .entry(Node::Var(*k))
                    .or_default()
                    .push(rule);
                self.worklist.push_back(Node::Var(*k));
            }
            AExp::Lit(_) => {}
        }
    }

    /// Resolves `cont` to a flow target: the first parameter of a
    /// literal λ, or an `IntoCont` indirection for a continuation
    /// variable. `None` when nothing can receive the flow.
    fn cont_target(&self, cont: &AExp) -> Option<Rhs> {
        match cont {
            AExp::Lam(l) => {
                let lam = self.program.lam(*l);
                lam.params.first().map(|&p| Rhs::Node(Node::Var(p)))
            }
            AExp::Var(k) => Some(Rhs::IntoCont(
                Box::new(Rhs::Node(Node::Var(*k))),
                Node::Var(*k),
            )),
            AExp::Lit(_) => None,
        }
    }

    fn generate(&mut self) {
        for call_id in self.program.call_ids() {
            let call = self.program.call(call_id).clone();
            match &call.kind {
                CallKind::App { func, args } => {
                    let arg_rhs: Vec<Rhs> = args.iter().map(|a| self.atom(a)).collect();
                    match func {
                        AExp::Lam(l) => {
                            let lam = self.program.lam(*l).clone();
                            if lam.params.len() == arg_rhs.len() {
                                for (param, rhs) in lam.params.iter().zip(&arg_rhs) {
                                    self.flow_rhs(rhs, Node::Var(*param));
                                }
                            }
                        }
                        AExp::Var(f) => {
                            let rule = ApplyRule { args: arg_rhs };
                            self.apply_triggers
                                .entry(Node::Var(*f))
                                .or_default()
                                .push(rule);
                            self.worklist.push_back(Node::Var(*f));
                        }
                        AExp::Lit(_) => {}
                    }
                }
                CallKind::If { .. } => {
                    // Whole-program analysis: both branches' call sites are
                    // in `call_ids()` already; the condition generates no
                    // constraints.
                }
                CallKind::PrimCall { op, args, cont } => match classify(*op) {
                    PrimSpec::Abort => {}
                    PrimSpec::Basics(bs) => {
                        let consts: BTreeSet<Val0> = bs.iter().map(|b| Val0::Basic(*b)).collect();
                        self.flow_into_cont(cont, Rhs::Consts(consts));
                    }
                    PrimSpec::AllocPair => {
                        if let Some(a0) = args.first() {
                            let rhs = self.atom(a0);
                            self.flow_rhs(&rhs, Node::Car(call.label));
                        }
                        if let Some(a1) = args.get(1) {
                            let rhs = self.atom(a1);
                            self.flow_rhs(&rhs, Node::Cdr(call.label));
                        }
                        let consts: BTreeSet<Val0> =
                            std::iter::once(Val0::Pair(call.label)).collect();
                        self.flow_into_cont(cont, Rhs::Consts(consts));
                    }
                    PrimSpec::ReadCar | PrimSpec::ReadCdr => {
                        let want_car = classify(*op) == PrimSpec::ReadCar;
                        if let Some(AExp::Var(scrutinee)) = args.first() {
                            // The projected field flows into the cont.
                            let target = Rhs::IntoCont(
                                Box::new(Rhs::Node(Node::Var(*scrutinee))),
                                Node::Var(*scrutinee),
                            );
                            let _ = target; // see ProjRule handling below
                            let rule = ProjRule {
                                want_car,
                                target: match cont {
                                    AExp::Lam(l) => {
                                        let lam = self.program.lam(*l);
                                        match lam.params.first() {
                                            Some(&p) => Rhs::Node(Node::Var(p)),
                                            None => continue,
                                        }
                                    }
                                    AExp::Var(k) => Rhs::IntoCont(
                                        Box::new(Rhs::Node(Node::Var(*k))),
                                        Node::Var(*k),
                                    ),
                                    AExp::Lit(_) => continue,
                                },
                            };
                            self.proj_triggers
                                .entry(Node::Var(*scrutinee))
                                .or_default()
                                .push(rule);
                            self.worklist.push_back(Node::Var(*scrutinee));
                        } else if let Some(a0) = args.first() {
                            // Literal/lam scrutinee: no pairs can flow.
                            let _ = a0;
                        }
                    }
                    PrimSpec::AllocAtom => {
                        if let Some(a0) = args.first() {
                            let rhs = self.atom(a0);
                            self.flow_rhs(&rhs, Node::AtomCell);
                        }
                        let consts: BTreeSet<Val0> =
                            std::iter::once(Val0::Atom(call.label)).collect();
                        self.flow_into_cont(cont, Rhs::Consts(consts));
                    }
                    PrimSpec::ReadAtom => {
                        // Global cell: every deref may see every write.
                        if let Some(target) = self.cont_target(cont) {
                            self.flow_rule_target(Node::AtomCell, target);
                        }
                    }
                    PrimSpec::WriteAtom => {
                        if let Some(a1) = args.get(1) {
                            let rhs = self.atom(a1);
                            self.flow_rhs(&rhs, Node::AtomCell);
                            self.flow_into_cont(cont, rhs);
                        }
                    }
                    PrimSpec::CasAtom => {
                        if let Some(a2) = args.get(2) {
                            let rhs = self.atom(a2);
                            self.flow_rhs(&rhs, Node::AtomCell);
                        }
                        let consts: BTreeSet<Val0> =
                            std::iter::once(Val0::Basic(AbsBasic::AnyBool)).collect();
                        self.flow_into_cont(cont, Rhs::Consts(consts));
                    }
                },
                CallKind::Spawn { thunk, cont } => {
                    // The thunk is applied to a thread-return
                    // continuation; the parent continues with a handle.
                    let retk: BTreeSet<Val0> = std::iter::once(Val0::RetK).collect();
                    match thunk {
                        AExp::Lam(l) => {
                            let lam = self.program.lam(*l).clone();
                            if let [param] = lam.params[..] {
                                self.add_values(Node::Var(param), retk);
                            }
                        }
                        AExp::Var(f) => {
                            let rule = ApplyRule {
                                args: vec![Rhs::Consts(retk)],
                            };
                            self.apply_triggers
                                .entry(Node::Var(*f))
                                .or_default()
                                .push(rule);
                            self.worklist.push_back(Node::Var(*f));
                        }
                        AExp::Lit(_) => {}
                    }
                    let tid: BTreeSet<Val0> = std::iter::once(Val0::Tid).collect();
                    self.flow_into_cont(cont, Rhs::Consts(tid));
                }
                CallKind::Join { cont, .. } => {
                    // Global node: joining any handle may yield any
                    // thread's result.
                    if let Some(target) = self.cont_target(cont) {
                        self.flow_rule_target(Node::ThreadRet, target);
                    }
                }
                CallKind::Fix { bindings, .. } => {
                    for (name, lam) in bindings {
                        self.add_values(Node::Var(*name), [Val0::Lam(*lam)]);
                    }
                }
                CallKind::Halt { value } => {
                    let rhs = self.atom(value);
                    self.flow_rhs(&rhs, Node::Halt);
                }
            }
        }
    }

    /// Fires the conditional rules registered on `node` against its
    /// current flow set.
    fn fire(&mut self, node: Node) {
        let values = self.flows.get(&node).cloned().unwrap_or_default();
        if values.is_empty() {
            return;
        }
        if let Some(rules) = self.apply_triggers.get(&node).cloned() {
            for value in &values {
                // A thread-return continuation in operator position
                // routes its single argument to the global ThreadRet
                // node (the child thread's result).
                if let Val0::RetK = value {
                    for rule in &rules {
                        if let [arg] = &rule.args[..] {
                            self.flow_rule_rhs(arg.clone(), Node::ThreadRet);
                        }
                    }
                    continue;
                }
                let Val0::Lam(l) = value else { continue };
                let lam = self.program.lam(*l).clone();
                for rule in &rules {
                    if lam.params.len() != rule.args.len() {
                        continue;
                    }
                    for (param, rhs) in lam.params.iter().zip(&rule.args) {
                        self.flow_rule_rhs(rhs.clone(), Node::Var(*param));
                    }
                }
            }
        }
        if let Some(rules) = self.proj_triggers.get(&node).cloned() {
            for value in &values {
                let Val0::Pair(site) = value else { continue };
                for rule in &rules {
                    let field = if rule.want_car {
                        Node::Car(*site)
                    } else {
                        Node::Cdr(*site)
                    };
                    self.flow_rule_target(field, rule.target.clone());
                }
            }
        }
    }

    /// `rhs ⊆ to`, where rhs may itself be an IntoCont indirection.
    fn flow_rule_rhs(&mut self, rhs: Rhs, to: Node) {
        match rhs {
            Rhs::Node(n) => self.add_edge(n, to),
            Rhs::Consts(vals) => self.add_values(to, vals),
            Rhs::IntoCont(inner, _) => {
                // An IntoCont as an *argument* means: route the inner flow
                // to `to` (the cont indirection was already resolved).
                self.flow_rule_rhs(*inner, to);
            }
        }
    }

    /// `from ⊆ target`, where target may be an IntoCont indirection
    /// (flow into the first param of closures reaching the cont node).
    fn flow_rule_target(&mut self, from: Node, target: Rhs) {
        match target {
            Rhs::Node(n) => self.add_edge(from, n),
            Rhs::Consts(_) => {}
            Rhs::IntoCont(_, cont_node) => {
                let rule = ApplyRule {
                    args: vec![Rhs::Node(from)],
                };
                self.apply_triggers.entry(cont_node).or_default().push(rule);
                self.worklist.push_back(cont_node);
            }
        }
    }

    fn run(mut self) -> ZeroCfa {
        self.generate();
        // Seed: fire everything once.
        let nodes: Vec<Node> = self
            .apply_triggers
            .keys()
            .chain(self.proj_triggers.keys())
            .copied()
            .collect();
        for n in nodes {
            self.worklist.push_back(n);
        }
        while let Some(node) = self.worklist.pop_front() {
            self.propagations += 1;
            // Propagate along subset edges.
            let values = self.flows.get(&node).cloned().unwrap_or_default();
            let targets = self.edges.get(&node).cloned().unwrap_or_default();
            for to in targets {
                self.add_values(to, values.iter().copied());
            }
            // Fire conditional rules.
            self.fire(node);
        }
        ZeroCfa {
            flows: self.flows,
            propagations: self.propagations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn solve(src: &str) -> (CpsProgram, ZeroCfa) {
        let p = cfa_syntax::compile(src).unwrap();
        let z = solve_zerocfa(&p);
        (p, z)
    }

    #[test]
    fn constant_reaches_halt() {
        let (_, z) = solve("42");
        assert!(z.halt_flow().contains(&Val0::Basic(AbsBasic::Int(42))));
    }

    #[test]
    fn identity_merges_like_0cfa() {
        let (_, z) = solve("(define (id x) x) (let ((a (id 3))) (id 4))");
        let halts = z.halt_flow();
        assert!(halts.contains(&Val0::Basic(AbsBasic::Int(3))));
        assert!(halts.contains(&Val0::Basic(AbsBasic::Int(4))));
    }

    #[test]
    fn lambdas_flow_through_application() {
        let (p, z) = solve("(define (apply f) (f 1)) (apply (lambda (n) n))");
        // Some variable carries the user lambda.
        let lam_count = p
            .bound_vars()
            .iter()
            .filter(|&&v| z.var_flow(v).iter().any(|val| matches!(val, Val0::Lam(_))))
            .count();
        assert!(lam_count >= 2, "f and the fix binder should carry lambdas");
    }

    #[test]
    fn pairs_project() {
        let (_, z) = solve("(car (cons 7 8))");
        assert!(z.halt_flow().contains(&Val0::Basic(AbsBasic::Int(7))));
        assert!(!z.halt_flow().contains(&Val0::Basic(AbsBasic::Int(8))));
    }

    #[test]
    fn branches_both_counted() {
        let (_, z) = solve("(if (zero? 1) 10 20)");
        assert!(z.halt_flow().contains(&Val0::Basic(AbsBasic::Int(10))));
        assert!(z.halt_flow().contains(&Val0::Basic(AbsBasic::Int(20))));
    }

    #[test]
    fn whole_program_analysis_covers_dead_code() {
        // Unlike the reachability-pruning worklist k=0, the constraint
        // system analyzes the dead arm too.
        let (_, z) = solve("(if #t 1 2)");
        assert!(z.halt_flow().contains(&Val0::Basic(AbsBasic::Int(2))));
    }

    #[test]
    fn fact_count_is_positive() {
        let (_, z) = solve("(define (f x) (f x)) (f (lambda (y) y))");
        assert!(z.fact_count() > 0);
        assert!(z.propagations > 0);
    }
}

//! Abstract interpreters for the k-CFA paradox reproduction.
//!
//! This crate implements the four CPS control-flow analyses the paper
//! compares (§6), all as instances of one worklist engine over a
//! single-threaded store:
//!
//! | Analysis | Module | Environments | Context | Complexity |
//! |---|---|---|---|---|
//! | k-CFA | [`kcfa`] | shared (maps) | last k calls | EXPTIME (k ≥ 1) |
//! | naive k-CFA | [`naive`] | shared (maps) | last k calls | per-state stores (§3.6) |
//! | m-CFA | [`flatcfa`] | flat (call string) | top m frames | PTIME |
//! | poly k-CFA | [`flatcfa`] | flat (call string) | last k calls | PTIME, weak precision |
//!
//! `k = 0` and `m = 0` coincide (context-insensitive 0CFA).
//!
//! # Examples
//!
//! ```
//! use cfa_core::{analyze, Analysis};
//! use cfa_core::engine::EngineLimits;
//!
//! let p = cfa_syntax::compile("(define (id x) x) (id 42)").unwrap();
//! let k1 = analyze(&p, Analysis::KCfa { k: 1 }, EngineLimits::default());
//! let m1 = analyze(&p, Analysis::MCfa { m: 1 }, EngineLimits::default());
//! assert_eq!(k1.halt_values, m1.halt_values);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod callgraph;
pub mod canon;
pub mod constraints;
pub mod domain;
pub mod engine;
pub mod fabric;
pub mod flatcfa;
pub mod fxhash;
pub mod gc;
pub mod kcfa;
pub mod naive;
pub mod parallel;
pub mod pool;
pub mod prim;
pub mod races;
pub mod reference;
pub mod report;
pub mod results;
pub mod shardstore;
pub mod soundness;
pub mod store;
pub mod telemetry;
pub mod zerocfa_datalog;

pub use canon::{
    canon_kcfa, canon_kcfa_ref, canon_mcfa, canon_mcfa_ref, canon_poly_kcfa, canon_poly_kcfa_ref,
    diff_snapshots, CanonSnapshot, DiffReport, MalformedSnapshot, NotComparable,
};
pub use domain::{AVal, AbsBasic, CallString};
pub use engine::{DeltaFlow, EngineLimits, EvalMode, Status};
pub use fabric::WakeBatching;
pub use flatcfa::{
    analyze_mcfa, analyze_poly_kcfa, submit_mcfa, submit_poly_kcfa, FlatCfaResult, FlatJob,
    FlatPolicy,
};
pub use kcfa::{analyze_kcfa, KcfaResult};
pub use naive::{
    analyze_kcfa_naive, analyze_kcfa_naive_gamma, analyze_kcfa_naive_with, Count, GammaOptions,
    NaiveLimits, NaiveResult,
};
pub use parallel::{
    run_fixpoint_parallel, run_fixpoint_parallel_on, run_fixpoint_parallel_with, ParallelMachine,
    Replicated, Sharded, StoreBackend,
};
pub use pool::{AnalysisPool, JobHandle, PoolBackend, PoolConfig, PoolMetrics, PoolRun};
pub use races::{races_kcfa, races_mcfa, races_poly_kcfa, Race, RaceKind, RaceReport};
pub use results::Metrics;
pub use shardstore::{run_fixpoint_sharded, run_fixpoint_sharded_with};
pub use telemetry::{PhaseProfile, RunTrace, TraceConfig, TraceEventKind, TraceLevel};
pub use zerocfa_datalog::{solve_zerocfa_datalog, ZeroCfaDatalog};

use cfa_syntax::cps::CpsProgram;

/// How an abstract machine holds the program it analyzes.
///
/// The direct entry points ([`analyze_kcfa`] and friends) borrow the
/// caller's program — no ownership change, no reference counting. Pool
/// tenants ([`pool::AnalysisPool`]) outlive the submitting frame, so
/// they hold shared ownership instead; [`kcfa::KCfaMachine::new_owned`]
/// builds a `'static` machine from an `Arc`. `Deref` makes the two
/// indistinguishable to the machine's transfer functions.
#[derive(Debug, Clone)]
pub enum ProgramSource<'p> {
    /// Borrowed from the caller (the direct, run-to-completion entry
    /// points).
    Borrowed(&'p CpsProgram),
    /// Shared ownership, for machines that outlive the submitting
    /// stack frame (pool tenants).
    Owned(std::sync::Arc<CpsProgram>),
}

impl std::ops::Deref for ProgramSource<'_> {
    type Target = CpsProgram;

    fn deref(&self) -> &CpsProgram {
        match self {
            ProgramSource::Borrowed(p) => p,
            ProgramSource::Owned(p) => p,
        }
    }
}

/// Which analysis to run (the four columns of the paper's §6 tables).
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Analysis {
    /// Shared-environment k-CFA (`k = 0` is 0CFA).
    KCfa {
        /// Context depth.
        k: usize,
    },
    /// m-CFA (flat environments, top-m frames).
    MCfa {
        /// Context depth.
        m: usize,
    },
    /// Naive polynomial k-CFA (flat environments, last-k call sites).
    PolyKCfa {
        /// Context depth.
        k: usize,
    },
}

impl Analysis {
    /// A short display name, e.g. `k=1`, `m=1`, `poly k=1`.
    pub fn short_name(self) -> String {
        match self {
            Analysis::KCfa { k } => format!("k={k}"),
            Analysis::MCfa { m } => format!("m={m}"),
            Analysis::PolyKCfa { k } => format!("poly k={k}"),
        }
    }

    /// The standard panel of analyses compared in the paper's tables.
    pub fn paper_panel() -> [Analysis; 4] {
        [
            Analysis::KCfa { k: 1 },
            Analysis::MCfa { m: 1 },
            Analysis::PolyKCfa { k: 1 },
            Analysis::KCfa { k: 0 },
        ]
    }
}

impl std::fmt::Display for Analysis {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.short_name())
    }
}

/// Runs the selected analysis and returns its summary metrics.
pub fn analyze(program: &CpsProgram, analysis: Analysis, limits: EngineLimits) -> Metrics {
    match analysis {
        Analysis::KCfa { k } => analyze_kcfa(program, k, limits).metrics,
        Analysis::MCfa { m } => analyze_mcfa(program, m, limits).metrics,
        Analysis::PolyKCfa { k } => analyze_poly_kcfa(program, k, limits).metrics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn panel_names_are_distinct() {
        let names: std::collections::BTreeSet<String> = Analysis::paper_panel()
            .iter()
            .map(|a| a.short_name())
            .collect();
        assert_eq!(names.len(), 4);
    }

    #[test]
    fn analyze_dispatches_all_kinds() {
        let p = cfa_syntax::compile("((lambda (x) x) 1)").unwrap();
        for a in Analysis::paper_panel() {
            let m = analyze(&p, a, EngineLimits::default());
            assert!(m.status.is_complete(), "{a}");
            assert!(m.halt_values.contains("1"), "{a}");
        }
    }

    #[test]
    fn zero_context_analyses_agree() {
        // [m=0]CFA and [k=0]CFA are the same analysis (paper §5.3) — halt
        // sets and inlining counts must coincide.
        let src = "(define (compose f g) (lambda (x) (f (g x))))
                   (define (inc n) (+ n 1))
                   ((compose inc inc) 1)";
        let p = cfa_syntax::compile(src).unwrap();
        let k0 = analyze(&p, Analysis::KCfa { k: 0 }, EngineLimits::default());
        let m0 = analyze(&p, Analysis::MCfa { m: 0 }, EngineLimits::default());
        let p0 = analyze(&p, Analysis::PolyKCfa { k: 0 }, EngineLimits::default());
        assert_eq!(k0.halt_values, m0.halt_values);
        assert_eq!(k0.halt_values, p0.halt_values);
        assert_eq!(k0.singleton_user_calls, m0.singleton_user_calls);
        assert_eq!(k0.singleton_user_calls, p0.singleton_user_calls);
        assert_eq!(k0.call_targets, m0.call_targets);
    }
}

//! The multi-tenant analysis pool: one long-lived worker pool
//! concurrently driving many independent fixpoint instances.
//!
//! The direct entry points ([`crate::parallel`], [`crate::shardstore`])
//! give one run every worker thread for its whole lifetime — the right
//! shape for one big analysis, the wrong one for a service running
//! thousands of small ones (the realistic k-CFA workload mix, per the
//! paper's complexity results: many small higher-order programs, each
//! cheap, arriving concurrently). [`AnalysisPool`] inverts the
//! ownership: the pool's threads are the long-lived resource, and each
//! submitted analysis is a **tenant** that borrows them in bounded
//! quanta.
//!
//! # Per-run state split
//!
//! Everything that used to be "the run" — pending counter, dedup
//! seen-set, status, stop flag, watchdog meters — lives in the
//! tenant's own private [`Fabric`]; the pool shares only threads.
//! A tenant is a parked `fabric::WorkerState` plus its backend
//! worker: whichever pool thread picks the tenant up next resumes the
//! state against the tenant's fabric (`WorkerCtx::resume`), runs a
//! bounded quantum of `fabric::worker_turn`s, and parks it again. This is
//! exactly the loop the dedicated engines run — one turn is one unit
//! of either — so a pooled fixpoint is the same computation as a solo
//! run and reaches the identical (unique) fixpoint.
//!
//! # Fairness
//!
//! Scheduling is round-robin over a single ready queue: a tenant whose
//! quantum expires goes to the back, and the next tenant comes off the
//! front. A pathological worst-case-family program therefore costs its
//! pool-mates at most `(tenants − 1) × quantum` of added latency per
//! quantum of its own — it cannot starve the batch.
//!
//! # Isolation
//!
//! * **Panics** — `seed`/`evaluate` run under the fabric's
//!   `catch_unwind`; a panicking tenant aborts *itself*
//!   ([`Status::Aborted`]) and its pool-mates never notice.
//! * **Stalls** — the stall watchdog reads per-fabric meters, and each
//!   tenant has its own fabric, so a tenant that leaks pending work
//!   aborts alone; an idle-looking pool thread busy on another tenant
//!   can never trip it.
//! * **Fault plans** — each tenant arms its own [`fabric::FaultPlan`]
//!   counters (`fabric::ArmedFaultPlan`), so a plan inherited through
//!   cloned [`EngineLimits`] fires only in the run it was planned
//!   against.
//! * **Budgets** — `time_budget` is measured from the tenant's first
//!   quantum, never from submission: queue wait is reported separately
//!   ([`crate::engine::FixpointResult::queue_wait`]) and costs the
//!   tenant nothing.
//!
//! # Example
//!
//! ```
//! use cfa_core::engine::{EngineLimits, Status};
//! use cfa_core::pool::{AnalysisPool, PoolConfig};
//! use cfa_core::parallel::Replicated;
//! use cfa_core::kcfa::submit_kcfa;
//! use std::sync::Arc;
//!
//! let pool = AnalysisPool::new(PoolConfig::default());
//! let p = Arc::new(cfa_syntax::compile("((lambda (x) x) 1)").unwrap());
//! let job = submit_kcfa::<Replicated>(&pool, p, 1, EngineLimits::default());
//! let result = job.wait();
//! assert_eq!(result.fixpoint.status, Status::Completed);
//! pool.shutdown();
//! ```

use crate::engine::{
    AbstractMachine, CancelToken, EngineLimits, EvalMode, FixpointResult, SchedStats, Status,
};
use crate::fabric::{self, ArmedFaultPlan, BackendWorker, Fabric, LockRecovered, Turn, WorkerCtx};
use crate::parallel::{ParallelMachine, StoreBackend};
use crate::telemetry::{RunTrace, TraceBuffer};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Sizing knobs for an [`AnalysisPool`].
#[derive(Clone, Debug)]
pub struct PoolConfig {
    /// Pool worker threads (at least one).
    pub threads: usize,
    /// Admission bound: the maximum number of unfinished tenants
    /// (queued + running). [`AnalysisPool::submit`] blocks while the
    /// pool is at the bound — backpressure, not rejection.
    pub queue_depth: usize,
    /// Pops (evaluations + gate-skips) one scheduling quantum may
    /// take before the tenant yields its thread.
    pub quantum_pops: u64,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig {
            threads: std::thread::available_parallelism().map_or(4, |n| n.get()),
            queue_depth: 256,
            quantum_pops: 256,
        }
    }
}

impl PoolConfig {
    /// The default sizing overridden by the environment:
    /// `CFA_POOL_THREADS` (worker threads) and `CFA_POOL_QUEUE_DEPTH`
    /// (admission bound). A malformed value panics with the offending
    /// text — silently ignoring an operator's sizing would be worse.
    pub fn from_env() -> Self {
        let mut cfg = Self::default();
        if let Ok(v) = std::env::var("CFA_POOL_THREADS") {
            cfg.threads = v
                .parse()
                .unwrap_or_else(|e| panic!("CFA_POOL_THREADS={v:?}: {e}"));
        }
        if let Ok(v) = std::env::var("CFA_POOL_QUEUE_DEPTH") {
            cfg.queue_depth = v
                .parse()
                .unwrap_or_else(|e| panic!("CFA_POOL_QUEUE_DEPTH={v:?}: {e}"));
        }
        cfg
    }
}

/// What one scheduling quantum of a tenant did.
#[doc(hidden)]
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Quantum {
    /// Took work; requeue for another quantum.
    Progress,
    /// Nothing runnable but the run is still pending (e.g. awaiting
    /// its stall watchdog); requeue, but don't spin hot on it.
    Idle,
    /// The run is over (quiescent, limit-stopped, or aborted): call
    /// [`TenantRun::finish`].
    Finished,
}

/// One admitted analysis, type-erased: the pool schedules these without
/// knowing the machine, the store backend, or the result type.
///
/// Not part of the supported API — implemented by the store backends
/// (via [`PoolBackend`]) and consumed by the pool's scheduler.
#[doc(hidden)]
pub trait TenantRun: Send {
    /// Runs up to `max_pops` pops of this tenant's worker loop.
    fn quantum(&mut self, max_pops: u64) -> Quantum;

    /// Whether the tenant's external [`CancelToken`] has been flipped
    /// (checked at quantum boundaries, so a still-queued tenant is
    /// cancelled before its first evaluation).
    fn cancel_requested(&self) -> bool;

    /// Tears the run down and deposits its result. `queue_wait` is the
    /// submission→activation gap the pool measured.
    fn finish(self: Box<Self>, queue_wait: Duration);

    /// [`TenantRun::finish`] for a run cancelled at a quantum boundary:
    /// records [`Status::Cancelled`] first, then finishes normally.
    fn finish_cancelled(self: Box<Self>, queue_wait: Duration);
}

/// A finished pooled run: the machine (with its accumulated metric
/// state) plus the raw fixpoint.
pub struct PoolRun<M: AbstractMachine> {
    /// The machine the tenant drove, with every worker-side metric
    /// absorbed — what `build_metrics`-style summaries
    /// read.
    pub machine: M,
    /// The raw fixpoint result, [`FixpointResult::queue_wait`] filled
    /// in by the pool.
    pub fixpoint: FixpointResult<M::Config, M::Addr, M::Val>,
}

impl<M: AbstractMachine> std::fmt::Debug for PoolRun<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PoolRun")
            .field("status", &self.fixpoint.status)
            .finish_non_exhaustive()
    }
}

/// Run-scheduling totals handed to a backend's assemble closure when a
/// tenant finishes.
pub(crate) struct RunTotals {
    pub(crate) iterations: u64,
    pub(crate) skipped: u64,
    pub(crate) wakeups: u64,
    pub(crate) delta_facts: u64,
    pub(crate) delta_applies: u64,
    pub(crate) sched: SchedStats,
    pub(crate) elapsed: Duration,
    pub(crate) queue_wait: Duration,
    pub(crate) trace: RunTrace,
}

/// A store backend that can host pool tenants — implemented by
/// [`crate::parallel::Replicated`] and [`crate::parallel::Sharded`],
/// selecting how a tenant's store is laid out exactly as
/// [`StoreBackend`] does for the dedicated engines.
pub trait PoolBackend: StoreBackend {
    /// Builds the type-erased tenant that drives `machine` to its
    /// fixpoint under this backend, depositing a [`PoolRun`] when done.
    /// Internal plumbing for [`AnalysisPool::submit`].
    #[doc(hidden)]
    fn tenant<M>(
        machine: M,
        limits: EngineLimits,
        mode: EvalMode,
        deposit: Box<dyn FnOnce(PoolRun<M>) + Send>,
    ) -> Box<dyn TenantRun>
    where
        M: ParallelMachine + 'static,
        M::Config: Send + Sync + 'static,
        M::Addr: Send + Sync + Ord + 'static,
        M::Val: Send + Sync + 'static;
}

/// The generic single-slot tenant both backends instantiate: a private
/// one-worker [`Fabric`], the backend worker homed on it, and the
/// parked loop state the quanta resume. `G` assembles the backend's
/// final state into the result `T` once the run stops.
pub(crate) struct SoloTenant<W, T, G>
where
    W: BackendWorker,
{
    fabric: Fabric<W::Config, W::Msg>,
    backend: W,
    /// Parked between quanta; taken while one is running.
    state: Option<fabric::WorkerState>,
    limits: EngineLimits,
    armed: Option<ArmedFaultPlan>,
    mode: EvalMode,
    /// Set at the first quantum — the run's time-budget clock starts
    /// here, not at submission.
    started: Option<Instant>,
    seeded: bool,
    assemble: Option<G>,
    deposit: Option<Box<dyn FnOnce(T) + Send>>,
}

impl<W, T, G> SoloTenant<W, T, G>
where
    W: BackendWorker,
    G: FnOnce(W, Status, Vec<W::Config>, RunTotals) -> T,
{
    /// Wraps an already-seeded-with-root fabric and its backend worker
    /// into a schedulable tenant.
    pub(crate) fn new(
        fabric: Fabric<W::Config, W::Msg>,
        backend: W,
        limits: EngineLimits,
        mode: EvalMode,
        assemble: G,
        deposit: Box<dyn FnOnce(T) + Send>,
    ) -> Self {
        let armed = limits.fault_plan.as_deref().map(ArmedFaultPlan::new);
        let state = fabric::WorkerState::with_trace(TraceBuffer::new(limits.trace));
        SoloTenant {
            fabric,
            backend,
            state: Some(state),
            limits,
            armed,
            mode,
            started: None,
            seeded: false,
            assemble: Some(assemble),
            deposit: Some(deposit),
        }
    }
}

impl<W, T, G> TenantRun for SoloTenant<W, T, G>
where
    W: BackendWorker,
    G: FnOnce(W, Status, Vec<W::Config>, RunTotals) -> T + Send,
{
    fn quantum(&mut self, max_pops: u64) -> Quantum {
        let first_quantum = self.started.is_none();
        let start = *self.started.get_or_insert_with(Instant::now);
        let mut state = self.state.take().expect("tenant state parked");
        if first_quantum {
            // The tenant's run-relative clock starts at activation, so
            // queue wait never skews its timeline.
            state.trace.set_origin(start);
        }
        let mut ctx =
            WorkerCtx::resume(0, &self.fabric, self.mode, self.limits.wake_batching, state);
        ctx.trace.tenant_resume(ctx.pops());
        if !self.seeded {
            self.seeded = true;
            fabric::seed_worker(&mut self.backend, &mut ctx);
        }
        let budget = ctx.pops() + max_pops;
        let outcome = loop {
            match fabric::worker_turn(
                &mut self.backend,
                &mut ctx,
                &self.limits,
                self.armed.as_ref(),
                start,
            ) {
                Turn::Stopped => break Quantum::Finished,
                Turn::Idle => break Quantum::Idle,
                Turn::Worked if ctx.pops() >= budget => break Quantum::Progress,
                Turn::Worked => {}
            }
        };
        ctx.trace.tenant_suspend(ctx.pops());
        self.state = Some(ctx.suspend());
        outcome
    }

    fn cancel_requested(&self) -> bool {
        self.limits
            .cancel
            .as_ref()
            .is_some_and(CancelToken::is_cancelled)
    }

    fn finish(self: Box<Self>, queue_wait: Duration) {
        let mut this = *self;
        let (status, configs) = this.fabric.finish();
        let fabric::WorkerTotals {
            iterations,
            skipped,
            wakeups,
            delta_facts,
            delta_applies,
            mut sched,
            trace,
        } = this
            .state
            .take()
            .expect("tenant state parked")
            .into_totals();
        this.backend.finish(&mut sched);
        let totals = RunTotals {
            iterations,
            skipped,
            wakeups,
            delta_facts,
            delta_applies,
            sched,
            elapsed: this.started.map_or(Duration::ZERO, |s| s.elapsed()),
            queue_wait,
            trace: RunTrace::from_buffers(vec![trace]),
        };
        let assemble = this.assemble.take().expect("assemble consumed once");
        let deposit = this.deposit.take().expect("deposit consumed once");
        deposit(assemble(this.backend, status, configs, totals));
    }

    fn finish_cancelled(self: Box<Self>, queue_wait: Duration) {
        // First writer wins, so a tenant that already stopped for a
        // different reason keeps its own status.
        self.fabric.stop(Status::Cancelled);
        self.finish(queue_wait);
    }
}

/// A ticket for one submitted analysis: wait for (or cancel) the run.
///
/// Dropping the handle detaches the run — it still executes and its
/// result is discarded on deposit.
pub struct JobHandle<T> {
    core: Arc<HandleCore<T>>,
    cancel: CancelToken,
}

impl<T> std::fmt::Debug for JobHandle<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobHandle")
            .field("finished", &self.is_finished())
            .finish_non_exhaustive()
    }
}

struct HandleCore<T> {
    slot: Mutex<Option<T>>,
    done: Condvar,
}

impl<T> JobHandle<T> {
    /// Blocks until the run deposits its result and returns it.
    pub fn wait(self) -> T {
        let mut slot = self.core.slot.lock_recovered();
        loop {
            if let Some(result) = slot.take() {
                return result;
            }
            slot = self
                .core
                .done
                .wait(slot)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Whether the result has been deposited ([`JobHandle::wait`] will
    /// return without blocking).
    pub fn is_finished(&self) -> bool {
        self.core.slot.lock_recovered().is_some()
    }

    /// Requests cancellation: a still-queued run finishes
    /// [`Status::Cancelled`] at zero iterations; a running one stops at
    /// its next cadenced check or quantum boundary.
    pub fn cancel(&self) {
        self.cancel.cancel();
    }

    /// The run's [`CancelToken`] (shared with the tenant's limits).
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }
}

/// One admitted tenant in the scheduler's ready queue.
struct AdmittedTenant {
    run: Box<dyn TenantRun>,
    submitted: Instant,
    /// Measured at activation (first quantum); `None` while queued.
    queue_wait: Option<Duration>,
}

/// Scheduler state shared by the pool's worker threads.
struct PoolSched {
    /// Tenants not currently checked out by a worker, in round-robin
    /// order (front is next to run, expired quanta requeue at the
    /// back).
    ready: VecDeque<AdmittedTenant>,
    /// Unfinished tenants: ready + checked out. Bounds admission and
    /// gates shutdown drain.
    live: usize,
    shutdown: bool,
}

/// Monotonic pool-lifetime counters, updated lock-free by the worker
/// loop and read by [`AnalysisPool::metrics`].
#[derive(Debug, Default)]
struct PoolStats {
    /// Tenants admitted (excludes shutdown-rejected submissions).
    submitted: AtomicU64,
    /// Tenants that have taken their first quantum.
    activated: AtomicU64,
    /// Tenants that deposited a result.
    finished: AtomicU64,
    /// Scheduling quanta served across all tenants.
    quanta: AtomicU64,
    /// Total submission→activation wait, microseconds, summed over
    /// activated tenants.
    queue_wait_us: AtomicU64,
    /// Total wall time spent inside tenant quanta, microseconds.
    eval_us: AtomicU64,
}

struct PoolShared {
    sched: Mutex<PoolSched>,
    /// Wakes workers: tenant ready or shutdown.
    work: Condvar,
    /// Wakes blocked submitters: a tenant finished.
    admit: Condvar,
    quantum_pops: u64,
    queue_depth: usize,
    stats: PoolStats,
}

/// A live snapshot of an [`AnalysisPool`]'s gauges and lifetime
/// counters ([`AnalysisPool::metrics`]) — what `cfa serve` reports for
/// its `stats` request.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct PoolMetrics {
    /// Pool worker threads.
    pub threads: usize,
    /// Tenants parked in the ready queue right now.
    pub queued: usize,
    /// Tenants checked out by a worker right now (live − queued).
    pub active: usize,
    /// Unfinished tenants (queued + active) — the admission gauge.
    pub live: usize,
    /// Tenants admitted over the pool's lifetime.
    pub submitted: u64,
    /// Tenants that have taken their first quantum.
    pub activated: u64,
    /// Tenants that deposited a result.
    pub finished: u64,
    /// Scheduling quanta served.
    pub quanta: u64,
    /// Total submission→activation wait (µs) over activated tenants;
    /// divide by `activated` for the mean per-tenant queue wait.
    pub queue_wait_us: u64,
    /// Total wall time spent inside tenant quanta (µs); divide by
    /// `quanta` for the mean quantum, or by `finished` for the mean
    /// per-tenant evaluation time.
    pub eval_us: u64,
}

impl PoolMetrics {
    /// Renders the snapshot as one line of JSON (the `cfa serve`
    /// `stats` payload).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"threads\":{},\"queued\":{},\"active\":{},\"live\":{},\
             \"submitted\":{},\"activated\":{},\"finished\":{},\"quanta\":{},\
             \"queue_wait_us\":{},\"eval_us\":{}}}",
            self.threads,
            self.queued,
            self.active,
            self.live,
            self.submitted,
            self.activated,
            self.finished,
            self.quanta,
            self.queue_wait_us,
            self.eval_us,
        )
    }
}

/// A long-lived pool of worker threads concurrently driving many
/// independent fixpoint analyses — see the module docs for the
/// scheduling and isolation story.
pub struct AnalysisPool {
    shared: Arc<PoolShared>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for AnalysisPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let sched = self.shared.sched.lock_recovered();
        f.debug_struct("AnalysisPool")
            .field("threads", &self.workers.len())
            .field("live", &sched.live)
            .field("queued", &sched.ready.len())
            .finish_non_exhaustive()
    }
}

impl AnalysisPool {
    /// Starts `config.threads` long-lived worker threads.
    pub fn new(config: PoolConfig) -> Self {
        let shared = Arc::new(PoolShared {
            sched: Mutex::new(PoolSched {
                ready: VecDeque::new(),
                live: 0,
                shutdown: false,
            }),
            work: Condvar::new(),
            admit: Condvar::new(),
            quantum_pops: config.quantum_pops.max(1),
            queue_depth: config.queue_depth.max(1),
            stats: PoolStats::default(),
        });
        let workers = (0..config.threads.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("cfa-pool-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn pool worker")
            })
            .collect();
        AnalysisPool { shared, workers }
    }

    /// Submits `machine` for analysis under store backend `B`,
    /// returning immediately with a [`JobHandle`]. Blocks only when the
    /// pool is at its admission bound ([`PoolConfig::queue_depth`]).
    ///
    /// The tenant observes `limits` exactly as a dedicated run would,
    /// except that the time-budget clock starts at its first scheduling
    /// quantum — queue wait is reported separately on
    /// [`FixpointResult::queue_wait`]. If `limits.cancel` is unset, a
    /// fresh token is installed so [`JobHandle::cancel`] always works.
    pub fn submit<B, M>(
        &self,
        machine: M,
        mut limits: EngineLimits,
        mode: EvalMode,
    ) -> JobHandle<PoolRun<M>>
    where
        B: PoolBackend,
        M: ParallelMachine + 'static,
        M::Config: Send + Sync + 'static,
        M::Addr: Send + Sync + Ord + 'static,
        M::Val: Send + Sync + 'static,
    {
        let cancel = match &limits.cancel {
            Some(token) => token.clone(),
            None => {
                let token = CancelToken::new();
                limits.cancel = Some(token.clone());
                token
            }
        };
        let core = Arc::new(HandleCore {
            slot: Mutex::new(None),
            done: Condvar::new(),
        });
        let deposit: Box<dyn FnOnce(PoolRun<M>) + Send> = {
            let core = Arc::clone(&core);
            Box::new(move |run| {
                *core.slot.lock_recovered() = Some(run);
                core.done.notify_all();
            })
        };
        let tenant = B::tenant(machine, limits, mode, deposit);

        let mut sched = self.shared.sched.lock_recovered();
        while sched.live >= self.shared.queue_depth && !sched.shutdown {
            sched = self
                .shared
                .admit
                .wait(sched)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        if sched.shutdown {
            drop(sched);
            // A shut-down pool runs nothing new: deposit a Cancelled
            // result immediately so the handle never hangs.
            tenant.finish_cancelled(Duration::ZERO);
        } else {
            sched.live += 1;
            sched.ready.push_back(AdmittedTenant {
                run: tenant,
                submitted: Instant::now(),
                queue_wait: None,
            });
            drop(sched);
            self.shared.stats.submitted.fetch_add(1, Ordering::Relaxed);
            self.shared.work.notify_one();
        }
        JobHandle { core, cancel }
    }

    /// A live snapshot of the pool's gauges (queue depth, active and
    /// parked tenants) and lifetime counters (admissions, finishes,
    /// quanta served, cumulative queue-wait and in-quantum time).
    /// Counters are monotonic and lock-free; the two gauges are read
    /// under the scheduler lock, so they are mutually consistent.
    pub fn metrics(&self) -> PoolMetrics {
        let (queued, live) = {
            let sched = self.shared.sched.lock_recovered();
            (sched.ready.len(), sched.live)
        };
        let stats = &self.shared.stats;
        PoolMetrics {
            threads: self.workers.len(),
            queued,
            active: live.saturating_sub(queued),
            live,
            submitted: stats.submitted.load(Ordering::Relaxed),
            activated: stats.activated.load(Ordering::Relaxed),
            finished: stats.finished.load(Ordering::Relaxed),
            quanta: stats.quanta.load(Ordering::Relaxed),
            queue_wait_us: stats.queue_wait_us.load(Ordering::Relaxed),
            eval_us: stats.eval_us.load(Ordering::Relaxed),
        }
    }

    /// Stops accepting work, drains every queued and running tenant to
    /// completion (each deposits its result), and joins the worker
    /// threads. Also runs on drop.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        {
            let mut sched = self.shared.sched.lock_recovered();
            sched.shutdown = true;
        }
        self.shared.work.notify_all();
        self.shared.admit.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for AnalysisPool {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// One pool worker: claim the front ready tenant, run one quantum,
/// requeue or finish it. Runs until shutdown *and* every tenant has
/// drained.
fn worker_loop(shared: &PoolShared) {
    loop {
        let mut tenant = {
            let mut sched = shared.sched.lock_recovered();
            loop {
                if let Some(t) = sched.ready.pop_front() {
                    break t;
                }
                if sched.shutdown && sched.live == 0 {
                    return;
                }
                sched = shared
                    .work
                    .wait(sched)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        };
        // Activation: the submission→first-quantum gap is the queue
        // wait; the tenant's own clocks start now.
        let queue_wait = match tenant.queue_wait {
            Some(w) => w,
            None => {
                let w = tenant.submitted.elapsed();
                tenant.queue_wait = Some(w);
                shared.stats.activated.fetch_add(1, Ordering::Relaxed);
                shared
                    .stats
                    .queue_wait_us
                    .fetch_add(w.as_micros() as u64, Ordering::Relaxed);
                w
            }
        };
        if tenant.run.cancel_requested() {
            finish_one(shared);
            tenant.run.finish_cancelled(queue_wait);
            continue;
        }
        let quantum_started = Instant::now();
        let outcome = tenant.run.quantum(shared.quantum_pops);
        shared.stats.quanta.fetch_add(1, Ordering::Relaxed);
        shared.stats.eval_us.fetch_add(
            quantum_started.elapsed().as_micros() as u64,
            Ordering::Relaxed,
        );
        match outcome {
            Quantum::Finished => {
                finish_one(shared);
                tenant.run.finish(queue_wait);
            }
            Quantum::Progress => requeue(shared, tenant),
            Quantum::Idle => {
                // Pending work but nothing runnable (a leaked pending
                // count awaiting its watchdog): keep the tenant
                // scheduled but don't spin hot on it.
                std::thread::sleep(Duration::from_micros(50));
                requeue(shared, tenant);
            }
        }
    }
}

/// Releases one finished tenant's admission slot and wakes submitters
/// and draining workers. Called *before* the result deposit, so a
/// returned [`JobHandle::wait`] implies [`AnalysisPool::metrics`]
/// already counts the job as finished — the worker thread still
/// completes the deposit before parking, so shutdown's thread join
/// cannot outrun a pending deposit and no handle ever hangs.
fn finish_one(shared: &PoolShared) {
    shared.stats.finished.fetch_add(1, Ordering::Relaxed);
    {
        let mut sched = shared.sched.lock_recovered();
        sched.live -= 1;
    }
    shared.admit.notify_all();
    // Wake parked workers so shutdown drain can observe live == 0.
    shared.work.notify_all();
}

/// Returns a tenant to the back of the round-robin queue.
fn requeue(shared: &PoolShared, tenant: AdmittedTenant) {
    {
        let mut sched = shared.sched.lock_recovered();
        sched.ready.push_back(tenant);
    }
    shared.work.notify_one();
}

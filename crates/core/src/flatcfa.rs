//! m-CFA and naive polynomial k-CFA: flat-environment abstract
//! interpreters (paper §5.2–5.4 and §6).
//!
//! In the flat-environment semantics an abstract environment is just a
//! call string — *all* bindings reachable from an environment share its
//! one allocation context, which collapses the `BEnv` component to
//! `Callᵐ` and makes the system space polynomial (Theorem 5.1).
//!
//! Two context policies instantiate the machine:
//!
//! * [`FlatPolicy::TopMFrames`] — **m-CFA**: applying a *procedure*
//!   pushes the call site; applying a *continuation* **restores** the
//!   continuation closure's saved environment (§5.3's `n̂ew`).
//! * [`FlatPolicy::LastKCalls`] — **naive polynomial k-CFA**: every
//!   application (procedure or continuation) pushes the call site, i.e.
//!   Shivers's last-k-call-sites contour policy on flat environments.
//!   §6 shows this policy degenerates toward 0CFA precision.
//!
//! # Examples
//!
//! ```
//! use cfa_core::flatcfa::analyze_mcfa;
//! use cfa_core::engine::EngineLimits;
//!
//! let p = cfa_syntax::compile("(define (id x) x) (id 42)").unwrap();
//! let result = analyze_mcfa(&p, 1, EngineLimits::default());
//! assert!(result.metrics.halt_values.contains("42"));
//! ```

use crate::domain::{AVal, AbsBasic, CallString};
use crate::engine::{
    run_fixpoint, AbstractMachine, DeltaFlow, EngineLimits, FixpointResult, TrackedStore,
};
use crate::kcfa::{build_metrics, render_val};
use crate::prim::{classify, PrimSpec};
use crate::reference::{RefTrackedStore, ReferenceMachine};
use crate::results::Metrics;
use crate::store::{Flow, FlowSet};
use cfa_concrete::base::Slot;
use cfa_syntax::cps::{AExp, CallId, CallKind, CpsProgram, Label, LamId, LamSort};
use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

/// A flat-environment abstract address: slot × abstract environment.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct AddrM {
    /// What is stored.
    pub slot: Slot,
    /// The environment (call string) it belongs to.
    pub env: CallString,
}

/// A flat-environment abstract value: closures capture a call string.
pub type ValM = AVal<CallString, AddrM>;

/// A flat-environment configuration `(call, ρ̂, θ̂)`.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct MConfig {
    /// Current call site.
    pub call: CallId,
    /// Current abstract environment.
    pub env: CallString,
    /// The abstract thread id: the bounded string of spawn-site labels
    /// that created this thread (empty for the main thread). Bounded by
    /// `max(bound,1)`, so the abstract thread pool stays finite and
    /// spawned threads are distinct from the main thread even at
    /// bound 0. Independent of `env` — it never participates in the
    /// flat-environment context policy.
    pub tid: CallString,
}

/// The context-allocation policy for the flat-environment machine.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum FlatPolicy {
    /// m-CFA: top-m stack frames (restore on continuation application).
    TopMFrames,
    /// Naive polynomial k-CFA: last-k call sites (tick on every
    /// application).
    LastKCalls,
}

/// The flat-environment abstract machine.
#[derive(Debug)]
pub struct FlatCfaMachine<'p> {
    program: crate::ProgramSource<'p>,
    bound: usize,
    policy: FlatPolicy,
    operator_flows: HashMap<CallId, (BTreeSet<LamId>, bool)>,
    lam_entry_envs: Vec<(LamId, CallString)>,
    halt_values: BTreeSet<ValM>,
}

impl<'p> FlatCfaMachine<'p> {
    /// Creates a machine with the given context bound and policy,
    /// borrowing the caller's program (the direct entry points).
    pub fn new(program: &'p CpsProgram, bound: usize, policy: FlatPolicy) -> Self {
        Self::from_source(crate::ProgramSource::Borrowed(program), bound, policy)
    }

    /// Creates a `'static` machine holding shared ownership of the
    /// program — the form [`crate::pool::AnalysisPool`] tenants need,
    /// since they outlive the submitting stack frame.
    pub fn new_owned(
        program: Arc<CpsProgram>,
        bound: usize,
        policy: FlatPolicy,
    ) -> FlatCfaMachine<'static> {
        FlatCfaMachine::from_source(crate::ProgramSource::Owned(program), bound, policy)
    }

    fn from_source(program: crate::ProgramSource<'p>, bound: usize, policy: FlatPolicy) -> Self {
        FlatCfaMachine {
            program,
            bound,
            policy,
            operator_flows: HashMap::new(),
            lam_entry_envs: Vec::new(),
            halt_values: BTreeSet::new(),
        }
    }

    /// Bound on the abstract thread-id string. At least 1 even for
    /// bound = 0, so spawned threads stay distinct from the main thread.
    pub(crate) fn tid_bound(&self) -> usize {
        self.bound.max(1)
    }

    /// The abstract result address of the thread spawned at `label` by
    /// thread `child_tid`.
    fn thread_ret_addr(label: Label, child_tid: &CallString) -> AddrM {
        AddrM {
            slot: Slot::ThreadRet(label),
            env: child_tid.clone(),
        }
    }

    fn eval(
        &self,
        e: &AExp,
        env: &CallString,
        store: &mut TrackedStore<'_, AddrM, ValM>,
    ) -> DeltaFlow {
        match e {
            AExp::Lit(l) => DeltaFlow::constructed(
                Flow::singleton(store.intern(AVal::Basic(AbsBasic::from_lit(*l)))),
                store.first_visit(),
            ),
            AExp::Var(v) => store.read_with_delta(&AddrM {
                slot: Slot::Var(*v),
                env: env.clone(),
            }),
            AExp::Lam(l) => DeltaFlow::constructed(
                Flow::singleton(store.intern(AVal::Clo {
                    lam: *l,
                    env: env.clone(),
                })),
                store.first_visit(),
            ),
        }
    }

    #[allow(clippy::too_many_arguments)]
    /// Applies every closure in `fset`: allocate the new environment,
    /// bind parameters there, and **copy** the λ-term's free variables
    /// from the closure's saved environment (flat-closure creation).
    /// Both the parameter binding and the free-variable copy are pure
    /// id-set merges — the flat machine's hottest loop never touches a
    /// value.
    ///
    /// Semi-naive: closures already applied on this configuration's
    /// previous evaluation receive only the argument and free-variable
    /// *deltas*; their successor configuration was pushed before. The
    /// free-variable sources are still read for every closure — the
    /// reads are this configuration's dependency set, and a dropped
    /// read would silence future wakeups.
    fn apply(
        &mut self,
        site: CallId,
        label: Label,
        fset: &DeltaFlow,
        args: &[DeltaFlow],
        current: &CallString,
        tid: &CallString,
        store: &mut TrackedStore<'_, AddrM, ValM>,
        out: &mut Vec<MConfig>,
    ) {
        let policy = self.policy;
        let bound = self.bound;
        let flows = self.operator_flows.entry(site).or_default();
        for fid in fset.all.iter() {
            if let AVal::RetK { ret } = store.val(fid) {
                // A thread-return continuation: the abstract thread
                // halts here, delivering its result into the thread's
                // result address (no successor configuration).
                let ret = ret.clone();
                if let [a] = args {
                    if fset.is_new(fid) {
                        store.join_flow(&ret, &a.all);
                    } else if a.has_new() {
                        store.join_flow(&ret, &a.new);
                        store.note_delta_apply();
                    }
                }
                continue;
            }
            let (lam, saved) = match store.val(fid) {
                AVal::Clo { lam, env } => (*lam, env.clone()),
                _ => {
                    flows.1 = true;
                    continue;
                }
            };
            flows.0.insert(lam);
            let lam_data = self.program.lam(lam);
            if lam_data.params.len() != args.len() {
                continue;
            }
            let is_new = fset.is_new(fid);
            // n̂ew(call, ρ̂, lam, ρ̂′), inlined from `new_env`.
            let fresh = match policy {
                FlatPolicy::TopMFrames => match lam_data.sort {
                    LamSort::Proc => current.push(label, bound),
                    LamSort::Cont => saved.clone(),
                },
                FlatPolicy::LastKCalls => current.push(label, bound),
            };
            for (&p, values) in lam_data.params.iter().zip(args) {
                if is_new || values.has_new() {
                    store.join_flow(
                        &AddrM {
                            slot: Slot::Var(p),
                            env: fresh.clone(),
                        },
                        if is_new { &values.all } else { &values.new },
                    );
                }
            }
            for &fv in self.program.free_vars(lam) {
                let from = AddrM {
                    slot: Slot::Var(fv),
                    env: saved.clone(),
                };
                let to = AddrM {
                    slot: Slot::Var(fv),
                    env: fresh.clone(),
                };
                if from != to {
                    let values = store.read_with_delta(&from);
                    if is_new || values.has_new() {
                        store.join_flow(&to, if is_new { &values.all } else { &values.new });
                    }
                }
            }
            if !is_new {
                store.note_delta_apply();
                continue;
            }
            self.lam_entry_envs.push((lam, fresh.clone()));
            out.push(MConfig {
                call: lam_data.body,
                env: fresh,
                tid: tid.clone(),
            });
        }
    }
}

impl<'p> AbstractMachine for FlatCfaMachine<'p> {
    type Config = MConfig;
    type Addr = AddrM;
    type Val = ValM;

    fn initial(&self) -> MConfig {
        MConfig {
            call: self.program.entry(),
            env: CallString::empty(),
            tid: CallString::empty(),
        }
    }

    fn step(
        &mut self,
        config: &MConfig,
        store: &mut TrackedStore<'_, AddrM, ValM>,
        out: &mut Vec<MConfig>,
    ) {
        // Clone the source (a reference copy or an `Arc` bump) so
        // `call_data` borrows the local, not `self` — the transfer
        // functions below need `&mut self`.
        let program = self.program.clone();
        let call_data = program.call(config.call);
        match &call_data.kind {
            CallKind::App { func, args } => {
                let fset = self.eval(func, &config.env, store);
                let arg_sets: Vec<DeltaFlow> = args
                    .iter()
                    .map(|a| self.eval(a, &config.env, store))
                    .collect();
                self.apply(
                    config.call,
                    call_data.label,
                    &fset,
                    &arg_sets,
                    &config.env,
                    &config.tid,
                    store,
                    out,
                );
            }
            CallKind::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let cset = self.eval(cond, &config.env, store).all;
                if cset.iter().any(|id| store.val(id).maybe_truthy()) {
                    out.push(MConfig {
                        call: *then_branch,
                        ..config.clone()
                    });
                }
                if cset.iter().any(|id| store.val(id).maybe_falsy()) {
                    out.push(MConfig {
                        call: *else_branch,
                        ..config.clone()
                    });
                }
            }
            CallKind::PrimCall { op, args, cont } => {
                let arg_sets: Vec<DeltaFlow> = args
                    .iter()
                    .map(|a| self.eval(a, &config.env, store))
                    .collect();
                let kset = self.eval(cont, &config.env, store);
                let first = store.first_visit();
                let mut result_ids: Vec<u32> = Vec::new();
                let mut result_new_ids: Vec<u32> = Vec::new();
                match classify(*op) {
                    PrimSpec::Abort => return,
                    PrimSpec::Basics(bs) => {
                        result_ids.extend(bs.iter().map(|b| store.intern(AVal::Basic(*b))));
                        if first {
                            result_new_ids.extend_from_slice(&result_ids);
                        }
                    }
                    PrimSpec::AllocPair => {
                        // Pairs are allocated in the *current* abstract
                        // environment (matches the concrete flat machine).
                        let car = AddrM {
                            slot: Slot::Car(call_data.label),
                            env: config.env.clone(),
                        };
                        let cdr = AddrM {
                            slot: Slot::Cdr(call_data.label),
                            env: config.env.clone(),
                        };
                        if let Some(vals) = arg_sets.first() {
                            if first || vals.has_new() {
                                store.join_flow(&car, if first { &vals.all } else { &vals.new });
                            }
                        }
                        if let Some(vals) = arg_sets.get(1) {
                            if first || vals.has_new() {
                                store.join_flow(&cdr, if first { &vals.all } else { &vals.new });
                            }
                        }
                        let pid = store.intern(AVal::Pair { car, cdr });
                        result_ids.push(pid);
                        if first {
                            result_new_ids.push(pid);
                        }
                    }
                    PrimSpec::ReadCar | PrimSpec::ReadCdr => {
                        let want_car = classify(*op) == PrimSpec::ReadCar;
                        if let Some(vals) = arg_sets.first() {
                            for vid in vals.all.iter() {
                                let addr = match store.val(vid) {
                                    AVal::Pair { car, cdr } => {
                                        if want_car {
                                            car.clone()
                                        } else {
                                            cdr.clone()
                                        }
                                    }
                                    _ => continue,
                                };
                                let cell = store.read_with_delta(&addr);
                                result_ids.extend(cell.all.iter());
                                if vals.is_new(vid) {
                                    result_new_ids.extend(cell.all.iter());
                                } else {
                                    result_new_ids.extend(cell.new.iter());
                                }
                            }
                        }
                    }
                    PrimSpec::AllocAtom => {
                        // Atom cells are allocated in the *current*
                        // abstract environment, like pairs.
                        let cell = AddrM {
                            slot: Slot::Atom(call_data.label),
                            env: config.env.clone(),
                        };
                        if let Some(vals) = arg_sets.first() {
                            if first || vals.has_new() {
                                store.join_flow(&cell, if first { &vals.all } else { &vals.new });
                            }
                        }
                        let aid = store.intern(AVal::Atom { cell });
                        result_ids.push(aid);
                        if first {
                            result_new_ids.push(aid);
                        }
                    }
                    PrimSpec::ReadAtom => {
                        if let Some(vals) = arg_sets.first() {
                            for vid in vals.all.iter() {
                                let addr = match store.val(vid) {
                                    AVal::Atom { cell } => cell.clone(),
                                    _ => continue,
                                };
                                let cell = store.read_with_delta(&addr);
                                result_ids.extend(cell.all.iter());
                                if vals.is_new(vid) {
                                    result_new_ids.extend(cell.all.iter());
                                } else {
                                    result_new_ids.extend(cell.new.iter());
                                }
                            }
                        }
                    }
                    PrimSpec::WriteAtom => {
                        // (reset! a v): a join into every cell reaching
                        // `a` (abstract stores are monotone); result `v`.
                        if let (Some(atoms), Some(vals)) = (arg_sets.first(), arg_sets.get(1)) {
                            for vid in atoms.all.iter() {
                                let addr = match store.val(vid) {
                                    AVal::Atom { cell } => cell.clone(),
                                    _ => continue,
                                };
                                if atoms.is_new(vid) {
                                    store.join_flow(&addr, &vals.all);
                                } else if vals.has_new() {
                                    store.join_flow(&addr, &vals.new);
                                }
                            }
                            result_ids.extend(vals.all.iter());
                            result_new_ids.extend(vals.new.iter());
                        }
                    }
                    PrimSpec::CasAtom => {
                        // (cas! a expected new): the swap may or may not
                        // happen abstractly — join the replacement into
                        // the cell and produce bool⊤.
                        if let (Some(atoms), Some(news)) = (arg_sets.first(), arg_sets.get(2)) {
                            for vid in atoms.all.iter() {
                                let addr = match store.val(vid) {
                                    AVal::Atom { cell } => cell.clone(),
                                    _ => continue,
                                };
                                if atoms.is_new(vid) {
                                    store.join_flow(&addr, &news.all);
                                } else if news.has_new() {
                                    store.join_flow(&addr, &news.new);
                                }
                            }
                        }
                        let bid = store.intern(AVal::Basic(AbsBasic::AnyBool));
                        result_ids.push(bid);
                        if first {
                            result_new_ids.push(bid);
                        }
                    }
                }
                if !result_ids.is_empty() {
                    let results = DeltaFlow {
                        all: Flow::from_ids(result_ids),
                        new: Flow::from_ids(result_new_ids),
                    };
                    // All-new results ⇒ the previous evaluation may
                    // have had none, so the continuations were never
                    // applied — run them in full.
                    let kset = kset.upgraded_if_all_new(&results);
                    self.apply(
                        config.call,
                        call_data.label,
                        &kset,
                        &[results],
                        &config.env,
                        &config.tid,
                        store,
                        out,
                    );
                }
            }
            CallKind::Fix { bindings, body } => {
                for (name, lam) in bindings {
                    store.join(
                        &AddrM {
                            slot: Slot::Var(*name),
                            env: config.env.clone(),
                        },
                        [AVal::Clo {
                            lam: *lam,
                            env: config.env.clone(),
                        }],
                    );
                }
                out.push(MConfig {
                    call: *body,
                    ..config.clone()
                });
            }
            CallKind::Spawn { thunk, cont } => {
                let tset = self.eval(thunk, &config.env, store);
                let kset = self.eval(cont, &config.env, store);
                let child_tid = config.tid.push(call_data.label, self.tid_bound());
                let ret = Self::thread_ret_addr(call_data.label, &child_tid);
                let first = store.first_visit();
                // Child: every thunk closure starts a new abstract
                // thread; its successors carry the child's thread id.
                let retk_id = store.intern(AVal::RetK { ret: ret.clone() });
                let retk = DeltaFlow::constructed(Flow::singleton(retk_id), first);
                self.apply(
                    config.call,
                    call_data.label,
                    &tset,
                    &[retk],
                    &config.env,
                    &child_tid,
                    store,
                    out,
                );
                // Parent: continues immediately with the thread handle.
                let tid_id = store.intern(AVal::Tid { ret });
                let handle = DeltaFlow::constructed(Flow::singleton(tid_id), first);
                self.apply(
                    config.call,
                    call_data.label,
                    &kset,
                    &[handle],
                    &config.env,
                    &config.tid,
                    store,
                    out,
                );
            }
            CallKind::Join { target, cont } => {
                let tset = self.eval(target, &config.env, store);
                let kset = self.eval(cont, &config.env, store);
                let mut result_ids: Vec<u32> = Vec::new();
                let mut result_new_ids: Vec<u32> = Vec::new();
                for vid in tset.all.iter() {
                    let ret = match store.val(vid) {
                        AVal::Tid { ret } => ret.clone(),
                        _ => continue,
                    };
                    // Reading `ret` registers a dependency: this config
                    // re-wakes when the child produces its result.
                    let cell = store.read_with_delta(&ret);
                    result_ids.extend(cell.all.iter());
                    if tset.is_new(vid) {
                        result_new_ids.extend(cell.all.iter());
                    } else {
                        result_new_ids.extend(cell.new.iter());
                    }
                }
                if !result_ids.is_empty() {
                    let results = DeltaFlow {
                        all: Flow::from_ids(result_ids),
                        new: Flow::from_ids(result_new_ids),
                    };
                    let kset = kset.upgraded_if_all_new(&results);
                    self.apply(
                        config.call,
                        call_data.label,
                        &kset,
                        &[results],
                        &config.env,
                        &config.tid,
                        store,
                        out,
                    );
                }
            }
            CallKind::Halt { value } => {
                // Only the growth is new to the accumulator (see the
                // k-CFA machine for the pinning argument).
                let vals = self.eval(value, &config.env, store);
                self.halt_values.extend(store.materialize(&vals.new));
            }
        }
    }
}

impl<'p> crate::parallel::ParallelMachine for FlatCfaMachine<'p> {
    fn fork(&self) -> Self {
        FlatCfaMachine::from_source(self.program.clone(), self.bound, self.policy)
    }

    fn absorb(&mut self, worker: Self) {
        for (site, (lams, saw_non_clo)) in worker.operator_flows {
            let entry = self.operator_flows.entry(site).or_default();
            entry.0.extend(lams);
            entry.1 |= saw_non_clo;
        }
        self.lam_entry_envs.extend(worker.lam_entry_envs);
        self.halt_values.extend(worker.halt_values);
    }
}

// ---------------------------------------------------------------------
// Reference (pre-interning) semantics — the differential oracle
// ---------------------------------------------------------------------

impl<'p> FlatCfaMachine<'p> {
    /// The original value-level `Ê`, kept for [`ReferenceMachine`] and
    /// reused by the race detector's post-fixpoint fact extraction.
    pub(crate) fn eval_ref(
        &self,
        e: &AExp,
        env: &CallString,
        store: &mut RefTrackedStore<'_, AddrM, ValM>,
    ) -> FlowSet<ValM> {
        match e {
            AExp::Lit(l) => std::iter::once(AVal::Basic(AbsBasic::from_lit(*l))).collect(),
            AExp::Var(v) => store.read(&AddrM {
                slot: Slot::Var(*v),
                env: env.clone(),
            }),
            AExp::Lam(l) => std::iter::once(AVal::Clo {
                lam: *l,
                env: env.clone(),
            })
            .collect(),
        }
    }

    #[allow(clippy::too_many_arguments)]
    /// The original value-level apply, kept for [`ReferenceMachine`].
    fn apply_ref(
        &mut self,
        site: CallId,
        label: Label,
        fset: &FlowSet<ValM>,
        args: &[FlowSet<ValM>],
        current: &CallString,
        tid: &CallString,
        store: &mut RefTrackedStore<'_, AddrM, ValM>,
        out: &mut Vec<MConfig>,
    ) {
        let policy = self.policy;
        let bound = self.bound;
        let flows = self.operator_flows.entry(site).or_default();
        for f in fset {
            if let AVal::RetK { ret } = f {
                // Thread-return continuation: deliver the result, no
                // successor (the abstract thread halts).
                if let [a] = args {
                    store.join(ret.clone(), a.iter().cloned());
                }
                continue;
            }
            let AVal::Clo { lam, env: saved } = f else {
                flows.1 = true;
                continue;
            };
            flows.0.insert(*lam);
            let lam_data = self.program.lam(*lam);
            if lam_data.params.len() != args.len() {
                continue;
            }
            let fresh = match policy {
                FlatPolicy::TopMFrames => match lam_data.sort {
                    LamSort::Proc => current.push(label, bound),
                    LamSort::Cont => saved.clone(),
                },
                FlatPolicy::LastKCalls => current.push(label, bound),
            };
            for (&p, values) in lam_data.params.iter().zip(args) {
                store.join(
                    AddrM {
                        slot: Slot::Var(p),
                        env: fresh.clone(),
                    },
                    values.iter().cloned(),
                );
            }
            for &fv in self.program.free_vars(*lam) {
                let from = AddrM {
                    slot: Slot::Var(fv),
                    env: saved.clone(),
                };
                let to = AddrM {
                    slot: Slot::Var(fv),
                    env: fresh.clone(),
                };
                if from != to {
                    let values = store.read(&from);
                    store.join(to, values);
                }
            }
            self.lam_entry_envs.push((*lam, fresh.clone()));
            out.push(MConfig {
                call: lam_data.body,
                env: fresh,
                tid: tid.clone(),
            });
        }
    }
}

impl<'p> ReferenceMachine for FlatCfaMachine<'p> {
    type Config = MConfig;
    type Addr = AddrM;
    type Val = ValM;

    fn initial(&self) -> MConfig {
        AbstractMachine::initial(self)
    }

    fn step(
        &mut self,
        config: &MConfig,
        store: &mut RefTrackedStore<'_, AddrM, ValM>,
        out: &mut Vec<MConfig>,
    ) {
        // Clone the source (a reference copy or an `Arc` bump) so
        // `call_data` borrows the local, not `self` — the transfer
        // functions below need `&mut self`.
        let program = self.program.clone();
        let call_data = program.call(config.call);
        match &call_data.kind {
            CallKind::App { func, args } => {
                let fset = self.eval_ref(func, &config.env, store);
                let arg_sets: Vec<FlowSet<ValM>> = args
                    .iter()
                    .map(|a| self.eval_ref(a, &config.env, store))
                    .collect();
                self.apply_ref(
                    config.call,
                    call_data.label,
                    &fset,
                    &arg_sets,
                    &config.env,
                    &config.tid,
                    store,
                    out,
                );
            }
            CallKind::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let cset = self.eval_ref(cond, &config.env, store);
                if cset.iter().any(AVal::maybe_truthy) {
                    out.push(MConfig {
                        call: *then_branch,
                        ..config.clone()
                    });
                }
                if cset.iter().any(AVal::maybe_falsy) {
                    out.push(MConfig {
                        call: *else_branch,
                        ..config.clone()
                    });
                }
            }
            CallKind::PrimCall { op, args, cont } => {
                let arg_sets: Vec<FlowSet<ValM>> = args
                    .iter()
                    .map(|a| self.eval_ref(a, &config.env, store))
                    .collect();
                let kset = self.eval_ref(cont, &config.env, store);
                let mut results: FlowSet<ValM> = FlowSet::new();
                match classify(*op) {
                    PrimSpec::Abort => return,
                    PrimSpec::Basics(bs) => {
                        results.extend(bs.iter().map(|b| AVal::Basic(*b)));
                    }
                    PrimSpec::AllocPair => {
                        let car = AddrM {
                            slot: Slot::Car(call_data.label),
                            env: config.env.clone(),
                        };
                        let cdr = AddrM {
                            slot: Slot::Cdr(call_data.label),
                            env: config.env.clone(),
                        };
                        if let Some(vals) = arg_sets.first() {
                            store.join(car.clone(), vals.iter().cloned());
                        }
                        if let Some(vals) = arg_sets.get(1) {
                            store.join(cdr.clone(), vals.iter().cloned());
                        }
                        results.insert(AVal::Pair { car, cdr });
                    }
                    PrimSpec::ReadCar | PrimSpec::ReadCdr => {
                        let want_car = classify(*op) == PrimSpec::ReadCar;
                        if let Some(vals) = arg_sets.first() {
                            for v in vals {
                                if let AVal::Pair { car, cdr } = v {
                                    let addr = if want_car { car } else { cdr };
                                    results.extend(store.read(&addr.clone()));
                                }
                            }
                        }
                    }
                    PrimSpec::AllocAtom => {
                        let cell = AddrM {
                            slot: Slot::Atom(call_data.label),
                            env: config.env.clone(),
                        };
                        if let Some(vals) = arg_sets.first() {
                            store.join(cell.clone(), vals.iter().cloned());
                        }
                        results.insert(AVal::Atom { cell });
                    }
                    PrimSpec::ReadAtom => {
                        if let Some(vals) = arg_sets.first() {
                            for v in vals {
                                if let AVal::Atom { cell } = v {
                                    results.extend(store.read(&cell.clone()));
                                }
                            }
                        }
                    }
                    PrimSpec::WriteAtom => {
                        if let (Some(atoms), Some(vals)) = (arg_sets.first(), arg_sets.get(1)) {
                            for v in atoms {
                                if let AVal::Atom { cell } = v {
                                    store.join(cell.clone(), vals.iter().cloned());
                                }
                            }
                            results.extend(vals.iter().cloned());
                        }
                    }
                    PrimSpec::CasAtom => {
                        if let (Some(atoms), Some(news)) = (arg_sets.first(), arg_sets.get(2)) {
                            for v in atoms {
                                if let AVal::Atom { cell } = v {
                                    store.join(cell.clone(), news.iter().cloned());
                                }
                            }
                        }
                        results.insert(AVal::Basic(AbsBasic::AnyBool));
                    }
                }
                if !results.is_empty() {
                    self.apply_ref(
                        config.call,
                        call_data.label,
                        &kset,
                        &[results],
                        &config.env,
                        &config.tid,
                        store,
                        out,
                    );
                }
            }
            CallKind::Fix { bindings, body } => {
                for (name, lam) in bindings {
                    store.join(
                        AddrM {
                            slot: Slot::Var(*name),
                            env: config.env.clone(),
                        },
                        [AVal::Clo {
                            lam: *lam,
                            env: config.env.clone(),
                        }],
                    );
                }
                out.push(MConfig {
                    call: *body,
                    ..config.clone()
                });
            }
            CallKind::Spawn { thunk, cont } => {
                let tset = self.eval_ref(thunk, &config.env, store);
                let kset = self.eval_ref(cont, &config.env, store);
                let child_tid = config.tid.push(call_data.label, self.tid_bound());
                let ret = Self::thread_ret_addr(call_data.label, &child_tid);
                let retk: FlowSet<ValM> =
                    std::iter::once(AVal::RetK { ret: ret.clone() }).collect();
                self.apply_ref(
                    config.call,
                    call_data.label,
                    &tset,
                    &[retk],
                    &config.env,
                    &child_tid,
                    store,
                    out,
                );
                let handle: FlowSet<ValM> = std::iter::once(AVal::Tid { ret }).collect();
                self.apply_ref(
                    config.call,
                    call_data.label,
                    &kset,
                    &[handle],
                    &config.env,
                    &config.tid,
                    store,
                    out,
                );
            }
            CallKind::Join { target, cont } => {
                let tset = self.eval_ref(target, &config.env, store);
                let kset = self.eval_ref(cont, &config.env, store);
                let mut results: FlowSet<ValM> = FlowSet::new();
                for v in &tset {
                    if let AVal::Tid { ret } = v {
                        results.extend(store.read(&ret.clone()));
                    }
                }
                if !results.is_empty() {
                    self.apply_ref(
                        config.call,
                        call_data.label,
                        &kset,
                        &[results],
                        &config.env,
                        &config.tid,
                        store,
                        out,
                    );
                }
            }
            CallKind::Halt { value } => {
                let vals = self.eval_ref(value, &config.env, store);
                self.halt_values.extend(vals);
            }
        }
    }
}

/// The full output of a flat-environment analysis run.
#[derive(Debug)]
pub struct FlatCfaResult {
    /// Raw fixpoint data.
    pub fixpoint: FixpointResult<MConfig, AddrM, ValM>,
    /// Cross-analysis summary.
    pub metrics: Metrics,
    /// Abstract values reaching `%halt`.
    pub halt_values: BTreeSet<ValM>,
}

fn analyze_flat(
    program: &CpsProgram,
    bound: usize,
    policy: FlatPolicy,
    name: String,
    limits: EngineLimits,
) -> FlatCfaResult {
    let mut machine = FlatCfaMachine::new(program, bound, policy);
    let fixpoint = run_fixpoint(&mut machine, limits);
    let metrics = build_metrics(
        name,
        program,
        &fixpoint,
        &machine.operator_flows,
        &machine.lam_entry_envs,
        &machine.halt_values,
    );
    FlatCfaResult {
        fixpoint,
        metrics,
        halt_values: machine.halt_values,
    }
}

/// Runs m-CFA with top-`m`-frames contexts.
pub fn analyze_mcfa(program: &CpsProgram, m: usize, limits: EngineLimits) -> FlatCfaResult {
    analyze_flat(
        program,
        m,
        FlatPolicy::TopMFrames,
        format!("m-CFA(m={m})"),
        limits,
    )
}

/// Runs naive polynomial k-CFA (flat environments, last-`k`-call-sites
/// contexts).
pub fn analyze_poly_kcfa(program: &CpsProgram, k: usize, limits: EngineLimits) -> FlatCfaResult {
    analyze_flat(
        program,
        k,
        FlatPolicy::LastKCalls,
        format!("poly-k-CFA(k={k})"),
        limits,
    )
}

/// Renders a flat-machine abstract value (re-exported convenience).
pub fn render_flat_val(program: &CpsProgram, v: &ValM) -> String {
    render_val(program, v)
}

/// A pending pooled flat-environment analysis — the ticket returned by
/// [`submit_mcfa`] and [`submit_poly_kcfa`], mirroring
/// [`crate::kcfa::KcfaJob`].
#[derive(Debug)]
pub struct FlatJob {
    handle: crate::pool::JobHandle<crate::pool::PoolRun<FlatCfaMachine<'static>>>,
    program: Arc<CpsProgram>,
    name: String,
}

impl FlatJob {
    /// Blocks until the analysis finishes and assembles the same
    /// [`FlatCfaResult`] the direct [`analyze_mcfa`] /
    /// [`analyze_poly_kcfa`] entry points build.
    pub fn wait(self) -> FlatCfaResult {
        let run = self.handle.wait();
        let metrics = build_metrics(
            self.name,
            &self.program,
            &run.fixpoint,
            &run.machine.operator_flows,
            &run.machine.lam_entry_envs,
            &run.machine.halt_values,
        );
        FlatCfaResult {
            fixpoint: run.fixpoint,
            metrics,
            halt_values: run.machine.halt_values,
        }
    }

    /// Whether the run has deposited its result ([`FlatJob::wait`]
    /// returns without blocking).
    pub fn is_finished(&self) -> bool {
        self.handle.is_finished()
    }

    /// Requests cancellation: still-queued runs finish
    /// [`crate::engine::Status::Cancelled`] at zero iterations.
    pub fn cancel(&self) {
        self.handle.cancel();
    }
}

fn submit_flat<B: crate::pool::PoolBackend>(
    pool: &crate::pool::AnalysisPool,
    program: Arc<CpsProgram>,
    bound: usize,
    policy: FlatPolicy,
    name: String,
    limits: EngineLimits,
) -> FlatJob {
    let machine = FlatCfaMachine::new_owned(Arc::clone(&program), bound, policy);
    let handle = pool.submit::<B, _>(machine, limits, crate::engine::EvalMode::SemiNaive);
    FlatJob {
        handle,
        program,
        name,
    }
}

/// Submits an m-CFA analysis of `program` (context bound `m`) to
/// `pool` under store backend `B`, returning immediately. The pool
/// drives it to the same fixpoint [`analyze_mcfa`] computes — the
/// fixed point of a monotone transfer function is unique — while
/// time-slicing fairly against the pool's other tenants.
pub fn submit_mcfa<B: crate::pool::PoolBackend>(
    pool: &crate::pool::AnalysisPool,
    program: Arc<CpsProgram>,
    m: usize,
    limits: EngineLimits,
) -> FlatJob {
    submit_flat::<B>(
        pool,
        program,
        m,
        FlatPolicy::TopMFrames,
        format!("m-CFA(m={m})"),
        limits,
    )
}

/// Submits a naive polynomial k-CFA analysis of `program` to `pool`
/// under store backend `B`; see [`submit_mcfa`].
pub fn submit_poly_kcfa<B: crate::pool::PoolBackend>(
    pool: &crate::pool::AnalysisPool,
    program: Arc<CpsProgram>,
    k: usize,
    limits: EngineLimits,
) -> FlatJob {
    submit_flat::<B>(
        pool,
        program,
        k,
        FlatPolicy::LastKCalls,
        format!("poly-k-CFA(k={k})"),
        limits,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mcfa(src: &str, m: usize) -> FlatCfaResult {
        let p = cfa_syntax::compile(src).unwrap();
        analyze_mcfa(&p, m, EngineLimits::default())
    }

    fn poly(src: &str, k: usize) -> FlatCfaResult {
        let p = cfa_syntax::compile(src).unwrap();
        analyze_poly_kcfa(&p, k, EngineLimits::default())
    }

    #[test]
    fn constant_program() {
        let r = mcfa("42", 1);
        assert!(r.metrics.status.is_complete());
        assert!(r.metrics.halt_values.contains("42"));
    }

    #[test]
    fn identity_distinguished_under_m1() {
        let r = mcfa("(define (id x) x) (let ((a (id 3))) (id 4))", 1);
        assert!(r.metrics.halt_values.contains("4"));
        assert!(
            !r.metrics.halt_values.contains("3"),
            "{:?}",
            r.metrics.halt_values
        );
    }

    #[test]
    fn m0_equals_context_insensitive() {
        let r = mcfa("(define (id x) x) (let ((a (id 3))) (id 4))", 0);
        assert!(r.metrics.halt_values.contains("3"));
        assert!(r.metrics.halt_values.contains("4"));
    }

    /// The §6 example: an intervening call inside `identity` destroys
    /// poly-1CFA's context but not m-CFA's.
    const IDENTITY_WITH_CALL: &str = "
        (define (do-something) 0)
        (define (identity x) (let ((_ (do-something))) x))
        (let ((a (identity 3))) (identity 4))";

    #[test]
    fn m1_keeps_bindings_distinct_despite_intervening_call() {
        let r = mcfa(IDENTITY_WITH_CALL, 1);
        assert!(r.metrics.halt_values.contains("4"));
        assert!(
            !r.metrics.halt_values.contains("3"),
            "m-CFA must not merge: {:?}",
            r.metrics.halt_values
        );
    }

    #[test]
    fn poly_1cfa_merges_after_intervening_call() {
        let r = poly(IDENTITY_WITH_CALL, 1);
        assert!(r.metrics.halt_values.contains("4"));
        assert!(
            r.metrics.halt_values.contains("3"),
            "naive poly k-CFA merges to {{3,4}}: {:?}",
            r.metrics.halt_values
        );
    }

    #[test]
    fn poly_1cfa_precise_without_intervening_call() {
        // Matches the paper: without the intervening call all three
        // context-sensitive analyses agree the result is 4 only.
        let r = poly("(define (id x) x) (let ((a (id 3))) (id 4))", 1);
        assert!(r.metrics.halt_values.contains("4"));
        assert!(
            !r.metrics.halt_values.contains("3"),
            "{:?}",
            r.metrics.halt_values
        );
    }

    #[test]
    fn recursion_terminates() {
        for bound in [0, 1, 2] {
            let r = mcfa(
                "(define (len xs) (if (null? xs) 0 (+ 1 (len (cdr xs)))))
                 (len (list 1 2 3))",
                bound,
            );
            assert!(r.metrics.status.is_complete(), "m={bound}");
        }
    }

    #[test]
    fn continuation_restore_preserves_caller_bindings() {
        // After returning from id, the outer x must still be visible —
        // this exercises the env-restore (not pop!) behavior of §5.
        let r = mcfa(
            "(define (id y) y)
             (let ((x 10)) (if (zero? (id 5)) x x))",
            1,
        );
        assert!(
            r.metrics.halt_values.contains("10"),
            "{:?}",
            r.metrics.halt_values
        );
    }

    #[test]
    fn pairs_flow() {
        let r = mcfa("(car (cons 41 99))", 1);
        assert!(r.metrics.halt_values.contains("41"));
        assert!(!r.metrics.halt_values.contains("99"));
    }

    #[test]
    fn higher_order_closures() {
        let r = mcfa(
            "(define (make-adder n) (lambda (m) (+ n m)))
             ((make-adder 3) 10)",
            1,
        );
        assert!(r.metrics.status.is_complete());
        assert!(r.metrics.halt_values.contains("int⊤"));
    }

    #[test]
    fn env_counts_are_polynomial_shaped() {
        // Two call sites of id ⇒ at most 2 entry envs under m=1.
        let r = mcfa("(define (id x) x) (let ((a (id 3))) (id 4))", 1);
        assert!(
            r.metrics.max_env_count() <= 3,
            "{:?}",
            r.metrics.lam_env_counts
        );
    }

    #[test]
    fn policies_differ_only_in_name_and_context() {
        let a = mcfa("42", 1);
        let b = poly("42", 1);
        assert_eq!(a.metrics.halt_values, b.metrics.halt_values);
        assert_ne!(a.metrics.analysis, b.metrics.analysis);
    }

    /// §5.3: "The analysis cannot just 'pop' stack frames … what our
    /// analysis needs to do instead (on a function return) is restore
    /// the abstract environment of the current caller." This program
    /// returns through *three* nested procedure calls with m = 1 — a
    /// pop-based scheme would end with an empty or wrong context, losing
    /// the caller's bindings.
    #[test]
    fn returns_through_deep_chains_restore_caller_envs() {
        let r = mcfa(
            "(define (f x) x)
             (define (g y) (f y))
             (define (h z) (g z))
             (let ((secret 99))
               (let ((r (h 5)))
                 (if (zero? r) secret secret)))",
            1,
        );
        assert!(
            r.metrics.halt_values.contains("99"),
            "caller binding lost after deep return: {:?}",
            r.metrics.halt_values
        );
        assert!(r.metrics.status.is_complete());
    }

    /// Top-m frames measure *call depth*: a chain one deeper than m
    /// merges, and increasing m by one recovers the distinction. (This
    /// is the precise sense in which m-CFA's context is the top of the
    /// stack, not the last m call sites.)
    const DEPTH2: &str = "
        (define (f x) x)
        (define (h z) (f z))
        (let ((a (h 3))) (h 4))";

    #[test]
    fn depth_beyond_m_merges() {
        let r = mcfa(DEPTH2, 1);
        assert!(
            r.metrics.halt_values.contains("3"),
            "{:?}",
            r.metrics.halt_values
        );
        assert!(r.metrics.halt_values.contains("4"));
    }

    #[test]
    fn raising_m_recovers_depth() {
        let r = mcfa(DEPTH2, 2);
        assert!(r.metrics.halt_values.contains("4"));
        assert!(
            !r.metrics.halt_values.contains("3"),
            "m=2 covers the depth-2 chain: {:?}",
            r.metrics.halt_values
        );
    }

    #[test]
    fn spawn_join_flows_thread_result() {
        for bound in [0, 1, 2] {
            let r = mcfa("(join (spawn 42))", bound);
            assert!(r.metrics.status.is_complete());
            assert!(
                r.metrics.halt_values.contains("42"),
                "m={bound}: {:?}",
                r.metrics.halt_values
            );
            let r = poly("(join (spawn 42))", bound);
            assert!(
                r.metrics.halt_values.contains("42"),
                "poly k={bound}: {:?}",
                r.metrics.halt_values
            );
        }
    }

    #[test]
    fn atom_writes_visible_after_join() {
        let r = mcfa(
            "(let ((c (atom 0))) (let ((t (spawn (reset! c 5)))) (join t) (deref c)))",
            1,
        );
        assert!(
            r.metrics.halt_values.contains("5"),
            "{:?}",
            r.metrics.halt_values
        );
        let r = mcfa("(let ((c (atom 0))) (cas! c 0 1))", 1);
        assert!(r.metrics.halt_values.contains("bool⊤"));
    }

    /// Recursion terminates and every reached context respects the
    /// top-m bound.
    #[test]
    fn contexts_respect_the_bound() {
        let r = mcfa(
            "(define (even? n) (if (zero? n) #t (odd? (- n 1))))
             (define (odd? n) (if (zero? n) #f (even? (- n 1))))
             (even? 10)",
            2,
        );
        assert!(r.metrics.status.is_complete());
        for env in r.fixpoint.configs.iter().map(|c| &c.env) {
            assert!(env.len() <= 2, "context exceeded bound: {env}");
        }
    }
}

//! A static race detector for concurrent higher-order programs — the
//! client analysis built on the abstract-thread domain.
//!
//! After one of the thread-aware analyses ([`crate::kcfa`] or
//! [`crate::flatcfa`]) reaches its fixpoint, this module re-examines the
//! saturated configuration graph and reports pairs of atom-cell accesses
//! that **may happen in parallel** without ordering:
//!
//! 1. **Thread graph.** Every reached configuration becomes a node,
//!    tagged with its abstract thread id. Successor edges are recovered
//!    by re-stepping each configuration with the value-level
//!    [`ReferenceMachine`] against the final store (at saturation this
//!    reproduces exactly the engine's edges; the differential suite
//!    checks that equivalence). Spawn nodes record the child thread they
//!    create; join nodes record the thread they *must* wait for (when
//!    the handle flow is a singleton thread id); primitive calls on
//!    atoms record `(cell, access-kind)` facts.
//! 2. **Must-joined dataflow.** A forward analysis computes, for every
//!    node, the set of threads that have certainly completed on *all*
//!    paths reaching it (gen at joins, kill at re-spawns, intersection
//!    at merges). A join generates only when the joined family provably
//!    has a *single concrete member*: the handle flow names a unique
//!    thread id, that id has exactly one spawn node, the spawn node is
//!    not on a graph cycle (a looping spawn site re-fires), and the
//!    spawning thread is itself a singleton family (recursively, with
//!    `main` as the base case). Joining one handle of a multi-member
//!    family finishes *that* member only — the siblings keep running —
//!    so such joins must not order anything. Spawn edges propagate into
//!    the child, so a child inherits the orderings its parent
//!    established — this is what orders sequential `spawn`/`join`
//!    sibling chains.
//! 3. **Spawn ordering.** An access `a` is ordered before every action
//!    of thread `U` if, for each spawn site `s` of `U`, `a` can only
//!    execute before `s` fires (`a →* s` and not `s →* a` in the
//!    graph). This orders main-thread initialization against later
//!    workers.
//! 4. **Pair enumeration.** Two accesses to the same abstract cell from
//!    different abstract threads race if at least one writes, they are
//!    not both `cas!` (compare-and-swap is the synchronized update), and
//!    neither ordering argument applies.
//!
//! The detector is *sound relative to the fixpoint*: with a completed
//! run, every concrete race on an atom cell is covered by a reported
//! abstract pair. Two deliberate caveats, both documented here because
//! they bound that claim:
//!
//! - **Same-thread pairs are not reported.** One abstract thread id can
//!   stand for several concrete threads when a spawn site re-executes
//!   (a loop spawning workers, a helper called twice); conflicts
//!   *within* such a family are invisible at this abstraction. Note
//!   that the thread id is a string of spawn-site labels only, so
//!   raising `k`/`m` splits a family only when the re-executions occur
//!   under distinct *parent spawn chains*; re-executions of one spawn
//!   site by a single thread share an abstract id at every bound.
//! - **The `atom` initialization write is ignored.** The cell is not
//!   shared before the allocating primitive returns it.
//!
//! The report renders as stable, sorted text or JSON (no external
//! serializer), and each race carries a concrete ordering/fence
//! suggestion: which thread to `join`, or which `reset!` to turn into a
//! `cas!`.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use cfa_concrete::base::Slot;
use cfa_syntax::cps::{AExp, CallId, CallKind, CpsProgram, Label};

use crate::domain::{AVal, CallString};
use crate::engine::FixpointResult;
use crate::flatcfa::{AddrM, FlatCfaMachine, FlatPolicy, MConfig, ValM};
use crate::kcfa::{AddrK, KCfaMachine, KConfig, ValK};
use crate::prim::{classify, PrimSpec};
use crate::reference::{RefStore, RefTrackedStore, ReferenceMachine};

/// How a primitive touches an atom cell.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
enum AccessKind {
    /// `deref` — a plain read.
    Read,
    /// `reset!` — an unsynchronized write.
    Write,
    /// `cas!` — a synchronized (compare-and-swap) write.
    Cas,
}

impl AccessKind {
    /// The source-level primitive name.
    fn op(self) -> &'static str {
        match self {
            AccessKind::Read => "deref",
            AccessKind::Write => "reset!",
            AccessKind::Cas => "cas!",
        }
    }

    /// Whether the access mutates the cell.
    fn writes(self) -> bool {
        matches!(self, AccessKind::Write | AccessKind::Cas)
    }
}

/// A machine-independent name for an abstract atom cell: allocation
/// site × allocation context. Both machines' cell addresses project
/// onto this shape (`AddrK.time` and `AddrM.env` are both call
/// strings), which is what lets one analysis pass serve both.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
struct CellKey {
    label: Label,
    ctx: CallString,
}

/// What a thread-graph node does, as far as the detector cares.
enum NodeKind {
    /// Spawns the thread with id `child`.
    Spawn { child: CallString },
    /// Joins; `must` is the joined thread when the handle flow proves a
    /// unique target (the only case that establishes ordering).
    Join { must: Option<CallString> },
    /// Touches atom cells.
    Access(Vec<(CellKey, AccessKind)>),
    /// Anything else.
    Other,
}

/// One saturated configuration, with the facts extracted from it.
struct Node {
    tid: CallString,
    site: Label,
    kind: NodeKind,
}

/// The machine-independent view of the saturated configuration graph.
struct ThreadGraph {
    nodes: Vec<Node>,
    succs: Vec<Vec<usize>>,
    tids: BTreeSet<CallString>,
    /// The initial configuration's node, when it is among the reached
    /// configs. `None` means the config set and the machine disagree
    /// (e.g. a fixpoint computed with different parameters was passed
    /// in); the must-join analysis then claims nothing rather than
    /// seeding from an arbitrary node.
    entry: Option<usize>,
}

/// What the detector needs from a machine beyond [`ReferenceMachine`]:
/// access to thread ids, the value-level evaluator, and the projections
/// from machine values/addresses onto the machine-independent facts.
trait ThreadedMachine: ReferenceMachine {
    /// The abstract thread id of a configuration.
    fn tid(config: &Self::Config) -> &CallString;
    /// The call site a configuration is about to execute.
    fn call(config: &Self::Config) -> CallId;
    /// The spawn-string bound (abstract thread-pool size).
    fn spawn_bound(&self) -> usize;
    /// Value-level atomic-expression evaluation in `config`'s environment.
    fn eval(
        &self,
        e: &AExp,
        config: &Self::Config,
        store: &mut RefTrackedStore<'_, Self::Addr, Self::Val>,
    ) -> BTreeSet<Self::Val>;
    /// Splits an address into its slot and context components.
    fn addr_parts(addr: &Self::Addr) -> (&Slot, &CallString);
    /// Projects a thread handle to its result address, if `v` is one.
    fn as_tid(v: &Self::Val) -> Option<&Self::Addr>;
    /// Projects an atom value to its cell address, if `v` is one.
    fn as_atom(v: &Self::Val) -> Option<&Self::Addr>;
}

impl ThreadedMachine for KCfaMachine<'_> {
    fn tid(config: &KConfig) -> &CallString {
        &config.tid
    }

    fn call(config: &KConfig) -> CallId {
        config.call
    }

    fn spawn_bound(&self) -> usize {
        self.tid_bound()
    }

    fn eval(
        &self,
        e: &AExp,
        config: &KConfig,
        store: &mut RefTrackedStore<'_, AddrK, ValK>,
    ) -> BTreeSet<ValK> {
        self.eval_ref(e, &config.benv, store)
    }

    fn addr_parts(addr: &AddrK) -> (&Slot, &CallString) {
        (&addr.slot, &addr.time)
    }

    fn as_tid(v: &ValK) -> Option<&AddrK> {
        match v {
            AVal::Tid { ret } => Some(ret),
            _ => None,
        }
    }

    fn as_atom(v: &ValK) -> Option<&AddrK> {
        match v {
            AVal::Atom { cell } => Some(cell),
            _ => None,
        }
    }
}

impl ThreadedMachine for FlatCfaMachine<'_> {
    fn tid(config: &MConfig) -> &CallString {
        &config.tid
    }

    fn call(config: &MConfig) -> CallId {
        config.call
    }

    fn spawn_bound(&self) -> usize {
        self.tid_bound()
    }

    fn eval(
        &self,
        e: &AExp,
        config: &MConfig,
        store: &mut RefTrackedStore<'_, AddrM, ValM>,
    ) -> BTreeSet<ValM> {
        self.eval_ref(e, &config.env, store)
    }

    fn addr_parts(addr: &AddrM) -> (&Slot, &CallString) {
        (&addr.slot, &addr.env)
    }

    fn as_tid(v: &ValM) -> Option<&AddrM> {
        match v {
            AVal::Tid { ret } => Some(ret),
            _ => None,
        }
    }

    fn as_atom(v: &ValM) -> Option<&AddrM> {
        match v {
            AVal::Atom { cell } => Some(cell),
            _ => None,
        }
    }
}

/// Builds the thread graph by re-stepping every saturated configuration
/// against the final store.
///
/// At a completed fixpoint every reference-step successor is itself a
/// saturated configuration; if the run was cut short by limits, unknown
/// successors are dropped and the graph (like the analysis itself)
/// under-approximates that frontier.
fn build_graph<M: ThreadedMachine>(
    machine: &mut M,
    program: &CpsProgram,
    configs: &[M::Config],
    store: &mut RefStore<M::Addr, M::Val>,
) -> ThreadGraph {
    let index: HashMap<&M::Config, usize> =
        configs.iter().enumerate().map(|(i, c)| (c, i)).collect();
    let entry = index.get(&machine.initial()).copied();
    let mut nodes = Vec::with_capacity(configs.len());
    let mut succs = Vec::with_capacity(configs.len());
    let mut tids = BTreeSet::new();
    for config in configs {
        let tid = M::tid(config).clone();
        tids.insert(tid.clone());
        let mut out = Vec::new();
        {
            let mut tracked = RefTrackedStore::wrap(store);
            machine.step(config, &mut tracked, &mut out);
        }
        let mut edges = BTreeSet::new();
        for succ in &out {
            if let Some(&j) = index.get(succ) {
                edges.insert(j);
            }
        }
        succs.push(edges.into_iter().collect());

        let call = program.call(M::call(config));
        let kind = match &call.kind {
            CallKind::Spawn { .. } => NodeKind::Spawn {
                child: tid.push(call.label, machine.spawn_bound()),
            },
            CallKind::Join { target, .. } => {
                let mut tracked = RefTrackedStore::wrap(store);
                let handles = machine.eval(target, config, &mut tracked);
                let mut targets = BTreeSet::new();
                let mut only_tids = !handles.is_empty();
                for v in &handles {
                    match M::as_tid(v) {
                        Some(ret) => {
                            let (slot, ctx) = M::addr_parts(ret);
                            if matches!(slot, Slot::ThreadRet(_)) {
                                targets.insert(ctx.clone());
                            } else {
                                only_tids = false;
                            }
                        }
                        None => only_tids = false,
                    }
                }
                let must = if only_tids && targets.len() == 1 {
                    targets.iter().next().cloned()
                } else {
                    None
                };
                NodeKind::Join { must }
            }
            CallKind::PrimCall { op, args, .. } => {
                let access = match classify(*op) {
                    PrimSpec::ReadAtom => Some(AccessKind::Read),
                    PrimSpec::WriteAtom => Some(AccessKind::Write),
                    PrimSpec::CasAtom => Some(AccessKind::Cas),
                    _ => None,
                };
                match (access, args.first()) {
                    (Some(kind), Some(target)) => {
                        let mut tracked = RefTrackedStore::wrap(store);
                        let cells: Vec<(CellKey, AccessKind)> = machine
                            .eval(target, config, &mut tracked)
                            .iter()
                            .filter_map(M::as_atom)
                            .filter_map(|cell| {
                                let (slot, ctx) = M::addr_parts(cell);
                                match slot {
                                    Slot::Atom(label) => Some((
                                        CellKey {
                                            label: *label,
                                            ctx: ctx.clone(),
                                        },
                                        kind,
                                    )),
                                    _ => None,
                                }
                            })
                            .collect();
                        if cells.is_empty() {
                            NodeKind::Other
                        } else {
                            NodeKind::Access(cells)
                        }
                    }
                    _ => NodeKind::Other,
                }
            }
            _ => NodeKind::Other,
        };
        nodes.push(Node {
            tid,
            site: call.label,
            kind,
        });
    }
    ThreadGraph {
        nodes,
        succs,
        tids,
        entry,
    }
}

/// Whether `s` lies on a cycle of `edges` (some successor path leads
/// back to `s`): a node a concrete run can visit more than once.
fn on_cycle(edges: &[Vec<usize>], s: usize) -> bool {
    let mut seen = vec![false; edges.len()];
    let mut work = Vec::new();
    for &j in &edges[s] {
        if !seen[j] {
            seen[j] = true;
            work.push(j);
        }
    }
    while let Some(i) = work.pop() {
        if i == s {
            return true;
        }
        for &j in &edges[i] {
            if !seen[j] {
                seen[j] = true;
                work.push(j);
            }
        }
    }
    false
}

/// The abstract thread ids whose family provably has at most one
/// concrete member. `main` always qualifies; a spawned id qualifies
/// when it has exactly one spawn node, that node is not on a cycle (a
/// looping spawn re-fires), and the spawning thread is itself a
/// singleton family (a family parent runs its spawn once *per member*).
/// Computed as a least fixpoint from below, so a spawn chain that feeds
/// back into itself through thread-id truncation stays out.
fn singleton_tids(graph: &ThreadGraph) -> BTreeSet<CallString> {
    let mut spawns: BTreeMap<&CallString, Vec<usize>> = BTreeMap::new();
    for (i, node) in graph.nodes.iter().enumerate() {
        if let NodeKind::Spawn { child } = &node.kind {
            spawns.entry(child).or_default().push(i);
        }
    }
    let mut singles = BTreeSet::new();
    singles.insert(CallString::empty());
    loop {
        let mut changed = false;
        for (tid, sites) in &spawns {
            if singles.contains(*tid) || sites.len() != 1 {
                continue;
            }
            let s = sites[0];
            if singles.contains(&graph.nodes[s].tid) && !on_cycle(&graph.succs, s) {
                singles.insert((*tid).clone());
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    singles
}

/// Forward must-analysis: for each node, the threads certainly joined on
/// every path from the entry. Optimistic initialization (unvisited = ⊤),
/// intersection at merges; a spawn kills its child (a re-spawn
/// invalidates the old completion), and a join generates only when its
/// unique target is a singleton family ([`singleton_tids`]) — joining
/// one handle of a multi-member family leaves the siblings running, so
/// nothing completes for certain. Nodes unreachable from the entry keep
/// ∅ — no ordering claims there — and a missing entry (the initial
/// config absent from `configs`) yields ∅ everywhere.
fn must_joined(graph: &ThreadGraph) -> Vec<BTreeSet<CallString>> {
    let n = graph.nodes.len();
    let mut inv: Vec<Option<BTreeSet<CallString>>> = vec![None; n];
    let Some(entry) = graph.entry else {
        return vec![BTreeSet::new(); n];
    };
    let singles = singleton_tids(graph);
    inv[entry] = Some(BTreeSet::new());
    let mut work = vec![entry];
    while let Some(i) = work.pop() {
        let mut out = inv[i].clone().expect("worklist nodes are initialized");
        match &graph.nodes[i].kind {
            NodeKind::Spawn { child } => {
                out.remove(child);
            }
            NodeKind::Join { must: Some(u) } if singles.contains(u) => {
                out.insert(u.clone());
            }
            _ => {}
        }
        for &j in &graph.succs[i] {
            let changed = match &mut inv[j] {
                slot @ None => {
                    *slot = Some(out.clone());
                    true
                }
                Some(cur) => {
                    let before = cur.len();
                    cur.retain(|t| out.contains(t));
                    cur.len() != before
                }
            };
            if changed {
                work.push(j);
            }
        }
    }
    inv.into_iter().map(Option::unwrap_or_default).collect()
}

/// Nodes reachable from `start` (inclusive) along `edges`.
fn reach(edges: &[Vec<usize>], start: usize) -> Vec<bool> {
    let mut seen = vec![false; edges.len()];
    seen[start] = true;
    let mut work = vec![start];
    while let Some(i) = work.pop() {
        for &j in &edges[i] {
            if !seen[j] {
                seen[j] = true;
                work.push(j);
            }
        }
    }
    seen
}

/// Renders a thread id (`main` for the empty spawn string).
fn render_tid(tid: &CallString) -> String {
    if tid.is_empty() {
        "main".to_string()
    } else {
        tid.to_string()
    }
}

/// Renders a cell by its allocation site, matching the store report's
/// `atom@ℓ` convention. The allocation *context* is deliberately
/// dropped: it is machine-specific (k-CFA stamps cells with times,
/// m-CFA with flat environments), and collapsing it makes the reports
/// of all three analyses comparable. Pair formation upstream still
/// distinguishes contexts; same-site races from different contexts
/// simply merge into one report entry.
fn render_cell(label: Label) -> String {
    format!("atom@{label}")
}

/// One side of a racing pair.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct AccessDesc {
    /// The abstract thread performing the access (`main` or a spawn
    /// string like `⟨5⟩`).
    pub thread: String,
    /// The call-site label of the primitive.
    pub site: Label,
    /// The source-level primitive: `deref`, `reset!`, or `cas!`.
    pub op: &'static str,
}

/// The conflict class of a race.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum RaceKind {
    /// A read overlapping a write.
    ReadWrite,
    /// Two overlapping writes.
    WriteWrite,
}

impl RaceKind {
    /// The stable display name.
    pub fn as_str(self) -> &'static str {
        match self {
            RaceKind::ReadWrite => "read/write",
            RaceKind::WriteWrite => "write/write",
        }
    }
}

/// One reported race: an unordered conflicting pair on one cell.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Race {
    /// The abstract cell (allocation site and context).
    pub cell: String,
    /// Read/write or write/write.
    pub kind: RaceKind,
    /// Canonically first endpoint (sorted by thread, site, op).
    pub first: AccessDesc,
    /// Canonically second endpoint.
    pub second: AccessDesc,
    /// A concrete ordering/fence suggestion.
    pub suggestion: String,
}

/// The race detector's full output for one analysis run.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RaceReport {
    /// The producing analysis (`k=1`, `m=1`, `poly k=1`).
    pub analysis: String,
    /// All abstract threads seen, sorted (`main` first).
    pub threads: Vec<String>,
    /// Number of atom-access facts examined.
    pub accesses: usize,
    /// The races, deduplicated and stably sorted.
    pub races: Vec<Race>,
}

/// Builds the fix suggestion for a canonically ordered pair.
fn suggestion(first: (&str, Label, AccessKind), second: (&str, Label, AccessKind)) -> String {
    let (ft, fs, fk) = first;
    let (st, ss, sk) = second;
    match (fk, sk) {
        // A plain write racing a cas!: upgrading the plain write
        // restores the all-cas exemption.
        (AccessKind::Write, AccessKind::Cas) => {
            format!("make the reset! at ℓ{fs} a cas! so every update of the cell synchronizes")
        }
        (AccessKind::Cas, AccessKind::Write) => {
            format!("make the reset! at ℓ{ss} a cas! so every update of the cell synchronizes")
        }
        (AccessKind::Write, AccessKind::Write) => {
            format!("order threads {ft} and {st} with join, or perform both updates with cas!")
        }
        // Read racing some write: order the reader after the writer.
        (AccessKind::Read, _) => {
            format!("join thread {st} before the deref at ℓ{fs}, or fold the read into a cas!")
        }
        (_, AccessKind::Read) => {
            format!("join thread {ft} before the deref at ℓ{ss}, or fold the read into a cas!")
        }
        // Both-cas pairs are exempt before this point.
        (AccessKind::Cas, AccessKind::Cas) => unreachable!("cas/cas pairs are not races"),
    }
}

/// Runs steps 2–4 over a finished thread graph.
fn analyze_graph(graph: &ThreadGraph, analysis: &str) -> RaceReport {
    let n = graph.nodes.len();
    let must_in = must_joined(graph);
    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, ss) in graph.succs.iter().enumerate() {
        for &j in ss {
            preds[j].push(i);
        }
    }
    let mut spawn_sites: BTreeMap<&CallString, Vec<usize>> = BTreeMap::new();
    for (i, node) in graph.nodes.iter().enumerate() {
        if let NodeKind::Spawn { child } = &node.kind {
            spawn_sites.entry(child).or_default().push(i);
        }
    }
    let mut fwd: HashMap<usize, Vec<bool>> = HashMap::new();
    let mut bwd: HashMap<usize, Vec<bool>> = HashMap::new();
    for sites in spawn_sites.values() {
        for &s in sites {
            fwd.entry(s).or_insert_with(|| reach(&graph.succs, s));
            bwd.entry(s).or_insert_with(|| reach(&preds, s));
        }
    }

    struct Acc<'g> {
        node: usize,
        tid: &'g CallString,
        site: Label,
        cell: &'g CellKey,
        kind: AccessKind,
    }
    let mut accesses = Vec::new();
    for (i, node) in graph.nodes.iter().enumerate() {
        if let NodeKind::Access(cells) = &node.kind {
            for (cell, kind) in cells {
                accesses.push(Acc {
                    node: i,
                    tid: &node.tid,
                    site: node.site,
                    cell,
                    kind: *kind,
                });
            }
        }
    }

    // `x` finishes before thread `u` even starts: every spawn of `u` is
    // causally after `x` and never loops back.
    let before_all_spawns = |x: &Acc, u: &CallString| -> bool {
        match spawn_sites.get(u) {
            Some(sites) => sites.iter().all(|s| bwd[s][x.node] && !fwd[s][x.node]),
            // `u` has no spawn node (the main thread): nothing precedes it.
            None => false,
        }
    };
    let ordered = |a: &Acc, b: &Acc| -> bool {
        must_in[a.node].contains(b.tid)
            || must_in[b.node].contains(a.tid)
            || before_all_spawns(a, b.tid)
            || before_all_spawns(b, a.tid)
    };

    // Dedupe site-level pairs (one source conflict shows up once, no
    // matter how many configurations or contexts cover it), sorted for
    // stability.
    type Endpoint = (String, Label, AccessKind);
    let mut pairs: BTreeSet<(Label, Endpoint, Endpoint)> = BTreeSet::new();
    for (i, a) in accesses.iter().enumerate() {
        for b in &accesses[i + 1..] {
            if a.tid == b.tid || a.cell != b.cell {
                continue;
            }
            if !a.kind.writes() && !b.kind.writes() {
                continue;
            }
            if a.kind == AccessKind::Cas && b.kind == AccessKind::Cas {
                continue;
            }
            if ordered(a, b) {
                continue;
            }
            let ea = (render_tid(a.tid), a.site, a.kind);
            let eb = (render_tid(b.tid), b.site, b.kind);
            let (first, second) = if ea <= eb { (ea, eb) } else { (eb, ea) };
            pairs.insert((a.cell.label, first, second));
        }
    }

    let races = pairs
        .into_iter()
        .map(|(cell, first, second)| {
            let kind = if first.2.writes() && second.2.writes() {
                RaceKind::WriteWrite
            } else {
                RaceKind::ReadWrite
            };
            let hint = suggestion(
                (first.0.as_str(), first.1, first.2),
                (second.0.as_str(), second.1, second.2),
            );
            Race {
                cell: render_cell(cell),
                kind,
                first: AccessDesc {
                    thread: first.0,
                    site: first.1,
                    op: first.2.op(),
                },
                second: AccessDesc {
                    thread: second.0,
                    site: second.1,
                    op: second.2.op(),
                },
                suggestion: hint,
            }
        })
        .collect();

    RaceReport {
        analysis: analysis.to_string(),
        threads: graph.tids.iter().map(render_tid).collect(),
        accesses: accesses.len(),
        races,
    }
}

/// Copies the interned engine store into a value-level reference store.
fn materialize_store<A, V, I>(entries: I) -> RefStore<A, V>
where
    A: Clone + Eq + std::hash::Hash,
    V: Ord + Clone,
    I: IntoIterator<Item = (A, BTreeSet<V>)>,
{
    let mut store = RefStore::new();
    for (addr, values) in entries {
        store.join(addr, values);
    }
    store
}

/// Runs the race detector over a saturated k-CFA fixpoint (from
/// [`crate::kcfa::analyze_kcfa`] — field `fixpoint` — or any engine
/// backend run on a [`KCfaMachine`] with the same `program` and `k`;
/// all backends compute the identical fixpoint, so the report is
/// engine-independent).
pub fn races_kcfa(
    program: &CpsProgram,
    k: usize,
    fixpoint: &FixpointResult<KConfig, AddrK, ValK>,
) -> RaceReport {
    let mut machine = KCfaMachine::new(program, k);
    let mut store = materialize_store(fixpoint.store.iter().map(|(a, vs)| (a.clone(), vs)));
    let graph = build_graph(&mut machine, program, &fixpoint.configs, &mut store);
    analyze_graph(&graph, &format!("k={k}"))
}

/// Runs the race detector over a saturated m-CFA fixpoint (from
/// [`crate::flatcfa::analyze_mcfa`] — field `fixpoint` — or any engine
/// backend run on a [`FlatCfaMachine`] with [`FlatPolicy::TopMFrames`]
/// and the same `program` and `m`).
pub fn races_mcfa(
    program: &CpsProgram,
    m: usize,
    fixpoint: &FixpointResult<MConfig, AddrM, ValM>,
) -> RaceReport {
    let mut machine = FlatCfaMachine::new(program, m, FlatPolicy::TopMFrames);
    let mut store = materialize_store(fixpoint.store.iter().map(|(a, vs)| (a.clone(), vs)));
    let graph = build_graph(&mut machine, program, &fixpoint.configs, &mut store);
    analyze_graph(&graph, &format!("m={m}"))
}

/// Runs the race detector over a saturated polynomial-k-CFA fixpoint
/// (from [`crate::flatcfa::analyze_poly_kcfa`] — field `fixpoint` — or
/// any engine backend run on a [`FlatCfaMachine`] with
/// [`FlatPolicy::LastKCalls`] and the same `program` and `k`).
pub fn races_poly_kcfa(
    program: &CpsProgram,
    k: usize,
    fixpoint: &FixpointResult<MConfig, AddrM, ValM>,
) -> RaceReport {
    let mut machine = FlatCfaMachine::new(program, k, FlatPolicy::LastKCalls);
    let mut store = materialize_store(fixpoint.store.iter().map(|(a, vs)| (a.clone(), vs)));
    let graph = build_graph(&mut machine, program, &fixpoint.configs, &mut store);
    analyze_graph(&graph, &format!("poly k={k}"))
}

impl RaceReport {
    /// Renders the human-readable report (stable across runs).
    pub fn render_text(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "race report ({}): {} race{} across {} thread{}, {} atom access{}\n",
            self.analysis,
            self.races.len(),
            if self.races.len() == 1 { "" } else { "s" },
            self.threads.len(),
            if self.threads.len() == 1 { "" } else { "s" },
            self.accesses,
            if self.accesses == 1 { "" } else { "es" },
        ));
        s.push_str(&format!("  threads: {}\n", self.threads.join(", ")));
        for (i, race) in self.races.iter().enumerate() {
            s.push_str(&format!(
                "  {}. {} on {}\n",
                i + 1,
                race.kind.as_str(),
                race.cell
            ));
            for end in [&race.first, &race.second] {
                s.push_str(&format!(
                    "     {} at ℓ{} by thread {}\n",
                    end.op, end.site, end.thread
                ));
            }
            s.push_str(&format!("     fix: {}\n", race.suggestion));
        }
        if self.races.is_empty() {
            s.push_str("  no races found\n");
        }
        s
    }

    /// Renders the report as JSON (hand-rolled; the schema is documented
    /// in the repository README).
    pub fn render_json(&self) -> String {
        fn esc(s: &str) -> String {
            let mut out = String::with_capacity(s.len());
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                    c => out.push(c),
                }
            }
            out
        }
        fn access(a: &AccessDesc) -> String {
            format!(
                "{{\"thread\":\"{}\",\"site\":{},\"op\":\"{}\"}}",
                esc(&a.thread),
                a.site,
                esc(a.op)
            )
        }
        let threads: Vec<String> = self
            .threads
            .iter()
            .map(|t| format!("\"{}\"", esc(t)))
            .collect();
        let races: Vec<String> = self
            .races
            .iter()
            .map(|r| {
                format!(
                    "{{\"cell\":\"{}\",\"kind\":\"{}\",\"first\":{},\"second\":{},\"suggestion\":\"{}\"}}",
                    esc(&r.cell),
                    r.kind.as_str(),
                    access(&r.first),
                    access(&r.second),
                    esc(&r.suggestion)
                )
            })
            .collect();
        format!(
            "{{\"analysis\":\"{}\",\"threads\":[{}],\"accesses\":{},\"races\":[{}]}}",
            esc(&self.analysis),
            threads.join(","),
            self.accesses,
            races.join(",")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineLimits;
    use crate::flatcfa::{analyze_mcfa, analyze_poly_kcfa};
    use crate::kcfa::analyze_kcfa;

    fn report_k(src: &str, k: usize) -> RaceReport {
        let p = cfa_syntax::compile(src).unwrap();
        let r = analyze_kcfa(&p, k, EngineLimits::default());
        assert!(r.metrics.status.is_complete(), "fixpoint incomplete");
        races_kcfa(&p, k, &r.fixpoint)
    }

    fn report_m(src: &str, m: usize) -> RaceReport {
        let p = cfa_syntax::compile(src).unwrap();
        let r = analyze_mcfa(&p, m, EngineLimits::default());
        assert!(r.metrics.status.is_complete(), "fixpoint incomplete");
        races_mcfa(&p, m, &r.fixpoint)
    }

    const UNJOINED_READ: &str = "(let ((a (atom 0)))
           (let ((t (spawn (reset! a 1))))
             (deref a)))";

    const JOINED_READ: &str = "(let ((a (atom 0)))
           (let ((t (spawn (reset! a 1))))
             (begin (join t) (deref a))))";

    const SIBLING_WRITES: &str = "(let ((a (atom 0)))
           (let ((t1 (spawn (reset! a 1))))
             (let ((t2 (spawn (reset! a 2))))
               (begin (join t1) (join t2)))))";

    const CAS_GUARDED: &str = "(let ((a (atom 0)))
           (let ((t (spawn (cas! a 0 1))))
             (begin (cas! a 0 2) (join t))))";

    // One spawn site executed twice (helper called from two call
    // sites), only one handle joined: the un-joined sibling shares the
    // joined member's abstract thread id, so the join must not order
    // the family's writes before the deref.
    const DOUBLE_SPAWN_SINGLE_JOIN: &str = "(let ((a (atom 0)))
           (let ((mk (lambda (x) (spawn (reset! a 1)))))
             (let ((h1 (mk 0)))
               (let ((h2 (mk 0)))
                 (begin (join h1) (deref a))))))";

    #[test]
    fn unjoined_read_races_with_child_write() {
        for report in [report_k(UNJOINED_READ, 1), report_m(UNJOINED_READ, 1)] {
            assert_eq!(report.races.len(), 1, "{}", report.render_text());
            let race = &report.races[0];
            assert_eq!(race.kind, RaceKind::ReadWrite);
            assert_eq!(race.first.op, "deref");
            assert_eq!(race.first.thread, "main");
            assert_eq!(race.second.op, "reset!");
        }
    }

    #[test]
    fn join_orders_child_write_before_read() {
        for report in [report_k(JOINED_READ, 1), report_m(JOINED_READ, 1)] {
            assert!(report.races.is_empty(), "{}", report.render_text());
            assert_eq!(report.threads.len(), 2);
            assert!(report.accesses >= 2);
        }
    }

    #[test]
    fn concurrent_sibling_writes_race() {
        let report = report_k(SIBLING_WRITES, 1);
        assert_eq!(report.races.len(), 1, "{}", report.render_text());
        assert_eq!(report.races[0].kind, RaceKind::WriteWrite);
        assert_eq!(report.threads.len(), 3);
    }

    #[test]
    fn sequential_spawn_join_chain_is_ordered() {
        let src = "(let ((a (atom 0)))
               (let ((t1 (spawn (reset! a 1))))
                 (begin
                   (join t1)
                   (let ((t2 (spawn (reset! a 2))))
                     (begin (join t2) (deref a))))))";
        for report in [report_k(src, 1), report_m(src, 1)] {
            assert!(report.races.is_empty(), "{}", report.render_text());
        }
    }

    #[test]
    fn cas_guarded_updates_do_not_race() {
        for report in [report_k(CAS_GUARDED, 1), report_m(CAS_GUARDED, 1)] {
            assert!(report.races.is_empty(), "{}", report.render_text());
            assert!(report.accesses >= 2);
        }
    }

    #[test]
    fn plain_write_racing_cas_suggests_upgrading_it() {
        let src = "(let ((a (atom 0)))
               (let ((t (spawn (cas! a 0 1))))
                 (begin (reset! a 2) (join t))))";
        let report = report_k(src, 1);
        assert_eq!(report.races.len(), 1, "{}", report.render_text());
        let race = &report.races[0];
        assert_eq!(race.kind, RaceKind::WriteWrite);
        assert!(
            race.suggestion.contains("cas!"),
            "suggestion should point at cas!: {}",
            race.suggestion
        );
    }

    #[test]
    fn joining_one_member_of_a_spawn_family_does_not_order_its_siblings() {
        for report in [
            report_k(DOUBLE_SPAWN_SINGLE_JOIN, 1),
            report_m(DOUBLE_SPAWN_SINGLE_JOIN, 1),
        ] {
            assert_eq!(report.races.len(), 1, "{}", report.render_text());
            let race = &report.races[0];
            assert_eq!(race.kind, RaceKind::ReadWrite);
            assert_eq!(race.first.op, "deref");
            assert_eq!(race.first.thread, "main");
            assert_eq!(race.second.op, "reset!");
        }
    }

    #[test]
    fn joining_every_member_of_a_singleton_chain_still_orders() {
        // The dual of the family case: two distinct spawn *sites*, each
        // fired once, both joined — every family is a provable
        // singleton, so the joins order both writes before the read.
        let src = "(let ((a (atom 0)))
               (let ((t1 (spawn (reset! a 1))))
                 (let ((t2 (spawn (reset! a 2))))
                   (begin (join t1) (join t2) (deref a)))))";
        for report in [report_k(src, 1), report_m(src, 1)] {
            let unordered_read = report
                .races
                .iter()
                .any(|r| r.first.op == "deref" || r.second.op == "deref");
            assert!(!unordered_read, "{}", report.render_text());
        }
    }

    #[test]
    fn loop_spawned_family_join_does_not_order() {
        // A recursive loop re-firing one spawn site: the spawn node is
        // on a graph cycle, so the family is multi-member and joining
        // one handle leaves siblings running.
        let src = "(let ((a (atom 0)))
               (letrec ((go (lambda (n)
                              (if (= n 0)
                                  (spawn (reset! a 1))
                                  (go (- n 1))))))
                 (let ((h (go 3)))
                   (begin (join h) (deref a)))))";
        for report in [report_k(src, 1), report_m(src, 1)] {
            assert_eq!(report.races.len(), 1, "{}", report.render_text());
            assert_eq!(report.races[0].kind, RaceKind::ReadWrite);
        }
    }

    #[test]
    fn main_write_before_spawn_is_ordered() {
        let src = "(let ((a (atom 0)))
               (begin
                 (reset! a 1)
                 (let ((t (spawn (deref a))))
                   (join t))))";
        for report in [report_k(src, 1), report_m(src, 1)] {
            assert!(report.races.is_empty(), "{}", report.render_text());
        }
    }

    #[test]
    fn analyses_agree_on_the_golden_suite() {
        // The detector is machine-independent: k-CFA, m-CFA, and poly
        // k-CFA see the same races on the golden programs (only the
        // analysis banner differs).
        for src in [
            UNJOINED_READ,
            JOINED_READ,
            SIBLING_WRITES,
            CAS_GUARDED,
            DOUBLE_SPAWN_SINGLE_JOIN,
        ] {
            let p = cfa_syntax::compile(src).unwrap();
            let k = races_kcfa(
                &p,
                1,
                &analyze_kcfa(&p, 1, EngineLimits::default()).fixpoint,
            );
            let m = races_mcfa(
                &p,
                1,
                &analyze_mcfa(&p, 1, EngineLimits::default()).fixpoint,
            );
            let pk = races_poly_kcfa(
                &p,
                1,
                &analyze_poly_kcfa(&p, 1, EngineLimits::default()).fixpoint,
            );
            assert_eq!(k.races, m.races, "{src}");
            assert_eq!(k.races, pk.races, "{src}");
        }
    }

    #[test]
    fn text_and_json_are_stable() {
        let report = report_k(UNJOINED_READ, 1);
        let text = report.render_text();
        assert!(text.contains("read/write"), "{text}");
        assert!(text.contains("by thread main"), "{text}");
        assert!(text.contains("fix:"), "{text}");
        let json = report.render_json();
        assert!(json.starts_with("{\"analysis\":\"k=1\""), "{json}");
        assert!(json.contains("\"kind\":\"read/write\""), "{json}");
        assert!(json.contains("\"op\":\"deref\""), "{json}");
        // Hand-rolled JSON must stay parseable by shape: balanced braces.
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes, "{json}");
    }

    #[test]
    fn sequential_programs_report_nothing() {
        let src = "(define (f x) (+ x 1)) (f 41)";
        let report = report_k(src, 0);
        assert!(report.races.is_empty());
        assert_eq!(report.threads, vec!["main".to_string()]);
        assert_eq!(report.accesses, 0);
    }
}

//! Abstract garbage collection (ΓCFA) for the per-state-store k-CFA.
//!
//! The paper's §8 ("future work") proposes carrying abstract garbage
//! collection — formulated by Might and Shivers for the functional
//! world — across the bridge. This module implements it for the naive
//! (per-state-store) k-CFA of §3.6, where it applies directly: before a
//! state is compared against the seen-set, its store is restricted to
//! the addresses *reachable* from the state's roots (its environment).
//! Unreachable bindings can never influence the rest of the run, so
//! collecting them is sound; because collected states collide more
//! often, the search both shrinks and gains precision.
//!
//! (The single-threaded store of §3.7 deliberately shares one store
//! across all configurations, so per-state collection does not apply
//! there — exactly the trade-off ΓCFA explores.)

use crate::domain::AVal;
use crate::kcfa::{AddrK, BEnvK};
use crate::naive::NaiveStore;
use std::collections::BTreeSet;
use std::rc::Rc;

/// Computes the addresses reachable from `roots` through the store
/// (closure environments and pair fields).
pub fn reachable_addrs(
    store: &NaiveStore,
    roots: impl IntoIterator<Item = AddrK>,
) -> BTreeSet<AddrK> {
    let mut seen: BTreeSet<AddrK> = BTreeSet::new();
    let mut work: Vec<AddrK> = roots.into_iter().collect();
    while let Some(addr) = work.pop() {
        if !seen.insert(addr.clone()) {
            continue;
        }
        let Some(values) = store.get(&addr) else {
            continue;
        };
        for v in values {
            match v {
                AVal::Basic(_) => {}
                AVal::Clo { env, .. } => {
                    for (_, a) in env.iter() {
                        if !seen.contains(a) {
                            work.push(a.clone());
                        }
                    }
                }
                AVal::Pair { car, cdr } => {
                    for a in [car, cdr] {
                        if !seen.contains(a) {
                            work.push(a.clone());
                        }
                    }
                }
                AVal::Tid { ret } | AVal::RetK { ret } => {
                    if !seen.contains(ret) {
                        work.push(ret.clone());
                    }
                }
                AVal::Atom { cell } => {
                    if !seen.contains(cell) {
                        work.push(cell.clone());
                    }
                }
            }
        }
    }
    seen
}

/// Restricts `store` to the addresses reachable from `benv` — one
/// abstract garbage collection.
pub fn collect(store: &NaiveStore, benv: &BEnvK) -> NaiveStore {
    let roots = benv.iter().map(|(_, a)| a.clone());
    let live = reachable_addrs(store, roots);
    if live.len() == store.len() {
        return store.clone();
    }
    Rc::new(
        store
            .iter()
            .filter(|(a, _)| live.contains(*a))
            .map(|(a, v)| (a.clone(), v.clone()))
            .collect(),
    )
}

/// Number of live vs total addresses (for diagnostics/benches).
pub fn live_ratio(store: &NaiveStore, benv: &BEnvK) -> (usize, usize) {
    let roots = benv.iter().map(|(_, a)| a.clone());
    (reachable_addrs(store, roots).len(), store.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::{AbsBasic, CallString};
    use crate::kcfa::ValK;
    use cfa_concrete::base::Slot;
    use cfa_syntax::cps::{Label, LamId};
    use cfa_syntax::intern::Symbol;
    use std::collections::BTreeMap;

    fn addr(i: usize) -> AddrK {
        AddrK {
            slot: Slot::Var(Symbol::from_index(i)),
            time: CallString::empty(),
        }
    }

    fn store_of(entries: Vec<(AddrK, Vec<ValK>)>) -> NaiveStore {
        Rc::new(
            entries
                .into_iter()
                .map(|(a, vs)| (a, vs.into_iter().collect()))
                .collect::<BTreeMap<_, _>>(),
        )
    }

    #[test]
    fn unreachable_bindings_are_collected() {
        let store = store_of(vec![
            (addr(0), vec![AVal::Basic(AbsBasic::Int(1))]),
            (addr(1), vec![AVal::Basic(AbsBasic::Int(2))]),
        ]);
        let benv = BEnvK::empty().extend([(Symbol::from_index(0), addr(0))]);
        let collected = collect(&store, &benv);
        assert_eq!(collected.len(), 1);
        assert!(collected.contains_key(&addr(0)));
    }

    #[test]
    fn closure_environments_keep_addresses_live() {
        let captured = BEnvK::empty().extend([(Symbol::from_index(2), addr(2))]);
        let store = store_of(vec![
            (
                addr(0),
                vec![AVal::Clo {
                    lam: LamId(0),
                    env: captured,
                }],
            ),
            (addr(2), vec![AVal::Basic(AbsBasic::Int(9))]),
            (addr(3), vec![AVal::Basic(AbsBasic::Int(8))]),
        ]);
        let benv = BEnvK::empty().extend([(Symbol::from_index(0), addr(0))]);
        let collected = collect(&store, &benv);
        assert!(
            collected.contains_key(&addr(2)),
            "captured address must stay live"
        );
        assert!(!collected.contains_key(&addr(3)));
    }

    #[test]
    fn pairs_keep_both_halves_live() {
        let car = AddrK {
            slot: Slot::Car(Label(0)),
            time: CallString::empty(),
        };
        let cdr = AddrK {
            slot: Slot::Cdr(Label(0)),
            time: CallString::empty(),
        };
        let store = store_of(vec![
            (
                addr(0),
                vec![AVal::Pair {
                    car: car.clone(),
                    cdr: cdr.clone(),
                }],
            ),
            (car.clone(), vec![AVal::Basic(AbsBasic::Int(1))]),
            (cdr.clone(), vec![AVal::Basic(AbsBasic::Nil)]),
        ]);
        let benv = BEnvK::empty().extend([(Symbol::from_index(0), addr(0))]);
        let collected = collect(&store, &benv);
        assert_eq!(collected.len(), 3);
    }

    #[test]
    fn collection_is_idempotent() {
        let store = store_of(vec![
            (addr(0), vec![AVal::Basic(AbsBasic::Int(1))]),
            (addr(1), vec![AVal::Basic(AbsBasic::Int(2))]),
        ]);
        let benv = BEnvK::empty().extend([(Symbol::from_index(0), addr(0))]);
        let once = collect(&store, &benv);
        let twice = collect(&once, &benv);
        assert_eq!(*once, *twice);
    }

    #[test]
    fn fully_live_store_is_shared_not_copied() {
        let store = store_of(vec![(addr(0), vec![AVal::Basic(AbsBasic::Int(1))])]);
        let benv = BEnvK::empty().extend([(Symbol::from_index(0), addr(0))]);
        let collected = collect(&store, &benv);
        assert!(Rc::ptr_eq(&store, &collected));
    }
}

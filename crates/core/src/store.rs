//! The single-threaded abstract store (paper §3.7).
//!
//! Shivers's key algorithmic move: approximate the *set* of stores of the
//! naive state-space search by their least upper bound — one global store
//! that only grows. [`AbsStore`] is that store: a map from abstract
//! addresses to flow sets, with monotone `join` as the only write
//! operation.

use std::collections::{BTreeSet, HashMap};
use std::hash::Hash;

/// A flow set: the abstract denotation `D̂ = P(V)`.
pub type FlowSet<V> = BTreeSet<V>;

/// A monotone map from abstract addresses to flow sets.
#[derive(Clone, Debug)]
pub struct AbsStore<A, V> {
    map: HashMap<A, FlowSet<V>>,
    joins: u64,
}

impl<A: Eq + Hash + Clone, V: Ord + Clone> Default for AbsStore<A, V> {
    fn default() -> Self {
        AbsStore { map: HashMap::new(), joins: 0 }
    }
}

impl<A: Eq + Hash + Clone, V: Ord + Clone> AbsStore<A, V> {
    /// An empty store (`⊥`).
    pub fn new() -> Self {
        Self::default()
    }

    /// Reads the flow set at `addr`; unbound addresses are `⊥` (empty).
    pub fn read(&self, addr: &A) -> FlowSet<V>
    where
        V: Clone,
    {
        self.map.get(addr).cloned().unwrap_or_default()
    }

    /// Borrows the flow set at `addr` if bound.
    pub fn get(&self, addr: &A) -> Option<&FlowSet<V>> {
        self.map.get(addr)
    }

    /// Joins `values` into the flow set at `addr`. Returns `true` if the
    /// set grew (the monotonicity signal the worklist engine needs).
    pub fn join(&mut self, addr: A, values: impl IntoIterator<Item = V>) -> bool {
        self.joins += 1;
        let set = self.map.entry(addr).or_default();
        let before = set.len();
        set.extend(values);
        set.len() != before
    }

    /// Number of bound addresses.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether no address is bound.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Total number of `(address, value)` facts — the store's lattice
    /// "height consumed", reported by the experiment harness.
    pub fn fact_count(&self) -> usize {
        self.map.values().map(BTreeSet::len).sum()
    }

    /// Number of join operations performed (including no-ops).
    pub fn join_count(&self) -> u64 {
        self.joins
    }

    /// Iterates over `(address, flow set)` pairs in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (&A, &FlowSet<V>)> {
        self.map.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_reports_growth() {
        let mut s: AbsStore<u32, u32> = AbsStore::new();
        assert!(s.join(1, [10]));
        assert!(!s.join(1, [10]), "joining an existing value is a no-op");
        assert!(s.join(1, [11]));
        assert_eq!(s.read(&1).len(), 2);
    }

    #[test]
    fn unbound_reads_are_bottom() {
        let s: AbsStore<u32, u32> = AbsStore::new();
        assert!(s.read(&99).is_empty());
        assert!(s.get(&99).is_none());
    }

    #[test]
    fn fact_count_sums_sets() {
        let mut s: AbsStore<u32, u32> = AbsStore::new();
        s.join(1, [1, 2, 3]);
        s.join(2, [4]);
        assert_eq!(s.fact_count(), 4);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn join_count_tracks_calls() {
        let mut s: AbsStore<u32, u32> = AbsStore::new();
        s.join(1, [1]);
        s.join(1, [1]);
        assert_eq!(s.join_count(), 2);
    }
}

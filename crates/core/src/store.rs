//! The single-threaded abstract store (paper §3.7), rebuilt around
//! **interned values and zero-copy flow sets**.
//!
//! Shivers's key algorithmic move: approximate the *set* of stores of the
//! naive state-space search by their least upper bound — one global store
//! that only grows. [`AbsStore`] is that store, with monotone `join` as
//! the only write operation.
//!
//! # Representation
//!
//! The paper's `D̂ = P(V)` is represented in three layers:
//!
//! * a [`ValuePool`] interns every abstract value (and every abstract
//!   address) into a dense `u32` id, so equality, hashing, and ordering
//!   on the hot path are integer operations and each value is hashed at
//!   most once per run;
//! * a flow set is a **sorted `Vec<u32>` of value ids behind an `Arc`**
//!   ([`Flow`]): reads hand out a reference-counted view instead of
//!   cloning a `BTreeSet`, membership is a binary search, and joins are
//!   linear sorted-merges that never look at the values themselves;
//! * every bound address carries an **epoch** — the value of a global
//!   counter at the address's last growth. Readers (the worklist engine)
//!   compare epochs to decide whether a dependent configuration can
//!   possibly observe anything new, and [`AbsStore::join_ids`] reports
//!   the exact *delta* of newly added ids;
//! * every row additionally keeps an **append-only delta log**: the ids
//!   in arrival order, with epoch marks. [`AbsStore::delta_ids_since`]
//!   answers "which values landed at this address after epoch `e`?" in
//!   O(log joins + |delta|) — the query semi-naive transfer functions
//!   ask on every re-evaluation (new closures × all args ∪ all closures
//!   × new args instead of the full product). Logs can be dropped
//!   ([`AbsStore::trim_delta_logs`]) to reclaim memory; queries that
//!   reach behind the trim report the loss and callers fall back to
//!   full re-evaluation.
//!
//! Joins are copy-on-grow: a growing join allocates one merged vector
//! and swaps the `Arc`, leaving previously handed-out views untouched
//! (they are immutable snapshots — safe, and free of defensive copies).
//!
//! The value-level API of the original engine ([`AbsStore::read`],
//! [`AbsStore::join`], [`AbsStore::iter`]) is retained for the post-run
//! consumers (soundness checks, reports, metrics); it materializes
//! `BTreeSet`s on demand and is not used on the fixpoint hot path.

use crate::fxhash::FxHashMap;
use std::collections::BTreeSet;
use std::hash::Hash;
use std::sync::Arc;

/// A materialized flow set: the abstract denotation `D̂ = P(V)`.
///
/// Only used off the hot path (post-run inspection and machine-local
/// accumulators); the engine itself works on [`Flow`] id sets.
pub type FlowSet<V> = BTreeSet<V>;

/// Interns items of type `T` into dense `u32` ids.
///
/// Ids are assigned in first-seen order; `get` is a plain vector index.
#[derive(Clone, Debug)]
pub struct ValuePool<T> {
    items: Vec<T>,
    index: FxHashMap<T, u32>,
}

impl<T> Default for ValuePool<T> {
    fn default() -> Self {
        ValuePool {
            items: Vec::new(),
            index: FxHashMap::default(),
        }
    }
}

impl<T: Eq + Hash + Clone> ValuePool<T> {
    /// An empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Rebuilds a pool from items already in id order — the final step
    /// of a sharded run, where the global concurrent interner drains
    /// into an ordinary [`ValuePool`] (ids are preserved verbatim; each
    /// item is hashed once to rebuild the lookup index).
    pub(crate) fn from_items(items: Vec<T>) -> Self {
        let index = items
            .iter()
            .enumerate()
            .map(|(i, item)| (item.clone(), i as u32))
            .collect();
        ValuePool { items, index }
    }

    /// Approximate resident bytes: the item vector plus the lookup
    /// index. Heap owned *inside* items (strings, shared environments)
    /// is not chased — the estimate compares store configurations, it
    /// does not audit the allocator.
    pub(crate) fn approx_bytes(&self) -> usize {
        self.items.capacity() * std::mem::size_of::<T>()
            + self.index.capacity() * (std::mem::size_of::<T>() + std::mem::size_of::<(u32, u64)>())
    }

    /// Interns `item`, returning its dense id.
    pub fn intern(&mut self, item: T) -> u32 {
        if let Some(&id) = self.index.get(&item) {
            return id;
        }
        let id = u32::try_from(self.items.len()).expect("pool overflow");
        self.items.push(item.clone());
        self.index.insert(item, id);
        id
    }

    /// Interns by reference, cloning only on first sight.
    pub fn intern_ref(&mut self, item: &T) -> u32 {
        if let Some(&id) = self.index.get(item) {
            return id;
        }
        let id = u32::try_from(self.items.len()).expect("pool overflow");
        self.items.push(item.clone());
        self.index.insert(item.clone(), id);
        id
    }

    /// The item with id `id`.
    pub fn get(&self, id: u32) -> &T {
        &self.items[id as usize]
    }

    /// The id of `item`, if it has been interned.
    pub fn lookup(&self, item: &T) -> Option<u32> {
        self.index.get(item).copied()
    }

    /// Number of interned items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Iterates items in id order.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.items.iter()
    }
}

/// A flow set as a sorted set of interned value ids.
///
/// `Shared` is a zero-copy view of a store row (an `Arc` clone); `Owned`
/// holds machine-built sets (literals, primop results). Both variants
/// keep their ids sorted and duplicate-free.
#[derive(Clone, Debug)]
pub enum Flow {
    /// A shared snapshot of a store row.
    Shared(Arc<Vec<u32>>),
    /// A locally built id set.
    Owned(Vec<u32>),
}

impl Default for Flow {
    fn default() -> Self {
        Flow::Owned(Vec::new())
    }
}

impl Flow {
    /// The empty flow set (`⊥`).
    pub fn empty() -> Flow {
        Flow::default()
    }

    /// A one-element flow set.
    pub fn singleton(id: u32) -> Flow {
        Flow::Owned(vec![id])
    }

    /// Builds a flow set from arbitrary ids (sorts and dedups).
    pub fn from_ids(mut ids: Vec<u32>) -> Flow {
        ids.sort_unstable();
        ids.dedup();
        Flow::Owned(ids)
    }

    /// The sorted ids.
    pub fn ids(&self) -> &[u32] {
        match self {
            Flow::Shared(arc) => arc,
            Flow::Owned(v) => v,
        }
    }

    /// Number of values.
    pub fn len(&self) -> usize {
        self.ids().len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.ids().is_empty()
    }

    /// Membership test (binary search).
    pub fn contains(&self, id: u32) -> bool {
        self.ids().binary_search(&id).is_ok()
    }

    /// Iterates the ids in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.ids().iter().copied()
    }
}

/// One bound address: its current id set, whether a join ever touched it
/// (even an empty one — the paper's `⊥`-bound addresses are observable
/// in the store-entry metric), and the global epoch of its last growth.
///
/// `log` holds the row's ids in arrival order; `marks` are `(epoch,
/// end offset into log)` checkpoints, one per growing join, kept in
/// strictly increasing epoch order. Together they answer delta-since
/// queries with a binary search and a slice.
#[derive(Clone, Debug, Default)]
pub(crate) struct Row {
    pub(crate) ids: Option<Arc<Vec<u32>>>,
    pub(crate) bound: bool,
    pub(crate) epoch: u64,
    pub(crate) log: Vec<u32>,
    pub(crate) marks: Vec<(u64, u32)>,
}

/// A monotone map from abstract addresses to flow sets.
///
/// See the module docs for the representation. `A` is the machine's
/// address type, `V` its value type; both are interned on first use.
#[derive(Clone, Debug)]
pub struct AbsStore<A, V> {
    addrs: ValuePool<A>,
    vals: ValuePool<V>,
    rows: Vec<Row>,
    joins: u64,
    value_joins: u64,
    epoch: u64,
    /// Delta queries reaching behind this epoch fail: the logs before it
    /// were dropped by [`AbsStore::trim_delta_logs`].
    log_floor: u64,
    /// Approximate bytes held by the rows' delta logs — maintained
    /// incrementally so the engine's watermark check is O(1), not a
    /// row walk. Reset by [`AbsStore::trim_delta_logs`].
    log_bytes: usize,
    bound_count: usize,
}

impl<A: Eq + Hash + Clone, V: Eq + Hash + Clone> Default for AbsStore<A, V> {
    fn default() -> Self {
        AbsStore {
            addrs: ValuePool::new(),
            vals: ValuePool::new(),
            rows: Vec::new(),
            joins: 0,
            value_joins: 0,
            epoch: 0,
            log_floor: 0,
            log_bytes: 0,
            bound_count: 0,
        }
    }
}

impl<A: Eq + Hash + Clone, V: Eq + Hash + Clone> AbsStore<A, V> {
    /// An empty store (`⊥`).
    pub fn new() -> Self {
        Self::default()
    }

    /// Assembles a store from already-consistent parts — how a sharded
    /// run's global store becomes an ordinary [`AbsStore`] result
    /// without re-interning a single value (ids are process-global).
    pub(crate) fn assemble(
        addrs: ValuePool<A>,
        vals: ValuePool<V>,
        rows: Vec<Row>,
        joins: u64,
        value_joins: u64,
        epoch: u64,
        log_floor: u64,
    ) -> Self {
        let bound_count = rows.iter().filter(|r| r.bound).count();
        let log_bytes = rows
            .iter()
            .map(|r| {
                r.log.len() * std::mem::size_of::<u32>()
                    + r.marks.len() * std::mem::size_of::<(u64, u32)>()
            })
            .sum();
        AbsStore {
            addrs,
            vals,
            rows,
            joins,
            value_joins,
            epoch,
            log_floor,
            log_bytes,
            bound_count,
        }
    }

    // -- id-level API (the hot path) ----------------------------------

    /// Interns `addr`, returning its dense id.
    pub fn addr_id(&mut self, addr: &A) -> u32 {
        let id = self.addrs.intern_ref(addr);
        if self.rows.len() <= id as usize {
            self.rows.resize_with(id as usize + 1, Row::default);
        }
        id
    }

    /// The id of `addr` if it has ever been seen.
    pub fn lookup_addr(&self, addr: &A) -> Option<u32> {
        self.addrs.lookup(addr)
    }

    /// The address with id `id`.
    pub fn addr(&self, id: u32) -> &A {
        self.addrs.get(id)
    }

    /// Interns a value, returning its dense id.
    pub fn val_id(&mut self, value: V) -> u32 {
        self.vals.intern(value)
    }

    /// Interns a value by reference, cloning only on first sight — the
    /// path for merging shared fact batches, where most values are
    /// already interned locally.
    pub fn val_id_ref(&mut self, value: &V) -> u32 {
        self.vals.intern_ref(value)
    }

    /// The value with id `id`.
    pub fn val(&self, id: u32) -> &V {
        self.vals.get(id)
    }

    /// The current flow set at address id `addr_id` — an `Arc` clone,
    /// never a copy of the ids.
    pub fn flow_by_id(&self, addr_id: u32) -> Flow {
        match self.rows.get(addr_id as usize).and_then(|r| r.ids.as_ref()) {
            Some(arc) => Flow::Shared(Arc::clone(arc)),
            None => Flow::empty(),
        }
    }

    /// The current flow set at `addr` (empty if unbound).
    pub fn read_flow(&self, addr: &A) -> Flow {
        match self.lookup_addr(addr) {
            Some(id) => self.flow_by_id(id),
            None => Flow::empty(),
        }
    }

    /// The global join epoch: bumped once per *growing* join.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The epoch at which address id `addr_id` last grew (0 = never).
    pub fn addr_epoch(&self, addr_id: u32) -> u64 {
        self.rows.get(addr_id as usize).map_or(0, |r| r.epoch)
    }

    /// Joins already-interned `new_ids` (sorted, unique) into the row of
    /// `addr_id`, appending the **delta** — the ids actually added — to
    /// `delta`. Returns `true` if the row grew.
    pub fn join_ids(&mut self, addr_id: u32, new_ids: &[u32], delta: &mut Vec<u32>) -> bool {
        self.joins += 1;
        self.value_joins += new_ids.len() as u64;
        debug_assert!(
            new_ids.windows(2).all(|w| w[0] < w[1]),
            "join_ids needs sorted ids"
        );
        if self.rows.len() <= addr_id as usize {
            self.rows.resize_with(addr_id as usize + 1, Row::default);
        }
        let row = &mut self.rows[addr_id as usize];
        if !row.bound {
            row.bound = true;
            self.bound_count += 1;
        }
        let delta_start = delta.len();
        match &row.ids {
            None => delta.extend_from_slice(new_ids),
            Some(cur) => {
                // Single merge scan collecting ids missing from `cur`.
                let cur = cur.as_slice();
                let mut i = 0;
                for &id in new_ids {
                    while i < cur.len() && cur[i] < id {
                        i += 1;
                    }
                    if i >= cur.len() || cur[i] != id {
                        delta.push(id);
                    }
                }
            }
        }
        if delta.len() == delta_start {
            return false;
        }
        // Copy-on-grow: build the merged vector once; existing `Shared`
        // views keep their snapshot.
        let added = &delta[delta_start..];
        let merged = match &row.ids {
            None => added.to_vec(),
            Some(cur) => {
                let mut merged = Vec::with_capacity(cur.len() + added.len());
                let (mut i, mut j) = (0, 0);
                while i < cur.len() && j < added.len() {
                    if cur[i] < added[j] {
                        merged.push(cur[i]);
                        i += 1;
                    } else {
                        merged.push(added[j]);
                        j += 1;
                    }
                }
                merged.extend_from_slice(&cur[i..]);
                merged.extend_from_slice(&added[j..]);
                merged
            }
        };
        row.ids = Some(Arc::new(merged));
        self.epoch += 1;
        row.epoch = self.epoch;
        // Append the growth to the row's delta log, checkpointed by the
        // epoch that produced it.
        row.log.extend_from_slice(&delta[delta_start..]);
        let end = u32::try_from(row.log.len()).expect("delta log overflow");
        row.marks.push((self.epoch, end));
        self.log_bytes += (delta.len() - delta_start) * std::mem::size_of::<u32>()
            + std::mem::size_of::<(u64, u32)>();
        true
    }

    /// The ids added to the row of `addr_id` strictly after epoch
    /// `since`, in arrival order (distinct, but not sorted).
    ///
    /// Returns `None` when the answer is unknowable — the logs covering
    /// that span were dropped by [`AbsStore::trim_delta_logs`]
    /// (*snapshot loss*); callers must fall back to treating the whole
    /// row as new. An unbound or never-grown row yields an empty slice.
    pub fn delta_ids_since(&self, addr_id: u32, since: u64) -> Option<&[u32]> {
        if since < self.log_floor {
            return None;
        }
        let Some(row) = self.rows.get(addr_id as usize) else {
            return Some(&[]);
        };
        // First mark with epoch > since; everything from its start
        // offset onward is the delta.
        let idx = row.marks.partition_point(|&(e, _)| e <= since);
        let start = if idx == 0 {
            0
        } else {
            row.marks[idx - 1].1 as usize
        };
        Some(&row.log[start..])
    }

    /// [`AbsStore::delta_ids_since`] as a sorted [`Flow`] (`None` on
    /// snapshot loss).
    pub fn delta_flow_since(&self, addr_id: u32, since: u64) -> Option<Flow> {
        self.delta_ids_since(addr_id, since)
            .map(|ids| Flow::from_ids(ids.to_vec()))
    }

    /// Drops every row's delta log, reclaiming the memory. Subsequent
    /// delta queries for epochs before the current one report snapshot
    /// loss (`None`); queries baselined at or after the trim keep
    /// working, since logging continues from here.
    pub fn trim_delta_logs(&mut self) {
        for row in &mut self.rows {
            row.log = Vec::new();
            row.marks = Vec::new();
        }
        self.log_floor = self.epoch;
        self.log_bytes = 0;
    }

    /// Joins a [`Flow`] into `addr` (id-level; no values are touched).
    pub fn join_flow(&mut self, addr: &A, flow: &Flow, delta: &mut Vec<u32>) -> bool {
        let id = self.addr_id(addr);
        self.join_ids(id, flow.ids(), delta)
    }

    /// Merges every fact of `other` into `self` — the shard-union step
    /// of the parallel engine.
    ///
    /// The two stores interned values independently, so their dense ids
    /// disagree; this walks `other`'s rows once, remapping each foreign
    /// value id to a local id through a memoized translation table
    /// (each distinct foreign value is interned at most once), and joins
    /// the remapped id sets row by row. Bound-but-`⊥` rows stay bound,
    /// preserving the store-entry metric across the merge, and `other`'s
    /// join counter is carried over so the merged store reports the
    /// shards' total join traffic (the merge's own bookkeeping joins
    /// are not counted).
    pub fn merge_from(&mut self, other: &AbsStore<A, V>) {
        let joins_before = self.joins;
        let value_joins_before = self.value_joins;
        let mut remap: Vec<Option<u32>> = vec![None; other.vals.len()];
        let mut mapped: Vec<u32> = Vec::new();
        let mut delta: Vec<u32> = Vec::new();
        for (i, row) in other.rows.iter().enumerate() {
            if !row.bound {
                continue;
            }
            let addr_id = self.addr_id(other.addrs.get(i as u32));
            mapped.clear();
            if let Some(ids) = &row.ids {
                mapped.extend(ids.iter().map(|&id| {
                    *remap[id as usize]
                        .get_or_insert_with(|| self.vals.intern_ref(other.vals.get(id)))
                }));
                mapped.sort_unstable();
                mapped.dedup();
            }
            delta.clear();
            self.join_ids(addr_id, &mapped, &mut delta);
        }
        self.joins = joins_before + other.joins;
        self.value_joins = value_joins_before + other.value_joins;
    }

    // -- value-level API (post-run consumers & compatibility) ---------

    /// Joins `values` into the flow set at `addr`. Returns `true` if the
    /// set grew (the monotonicity signal the worklist engine needs).
    pub fn join(&mut self, addr: A, values: impl IntoIterator<Item = V>) -> bool {
        let ids: Vec<u32> = values.into_iter().map(|v| self.vals.intern(v)).collect();
        let flow = Flow::from_ids(ids);
        let addr_id = self.addr_id(&addr);
        let mut delta = Vec::new();
        self.join_ids(addr_id, flow.ids(), &mut delta)
    }

    /// Materializes the flow set at `addr`; unbound addresses are `⊥`
    /// (empty).
    pub fn read(&self, addr: &A) -> FlowSet<V>
    where
        V: Ord,
    {
        self.materialize(&self.read_flow(addr))
    }

    /// Materializes a [`Flow`] into a value set.
    pub fn materialize(&self, flow: &Flow) -> FlowSet<V>
    where
        V: Ord,
    {
        flow.iter().map(|id| self.vals.get(id).clone()).collect()
    }

    /// Number of bound addresses (addresses some join touched).
    pub fn len(&self) -> usize {
        self.bound_count
    }

    /// Whether no address is bound.
    pub fn is_empty(&self) -> bool {
        self.bound_count == 0
    }

    /// Total number of `(address, value)` facts — the store's lattice
    /// "height consumed", reported by the experiment harness.
    pub fn fact_count(&self) -> usize {
        self.rows
            .iter()
            .filter_map(|r| r.ids.as_ref())
            .map(|ids| ids.len())
            .sum()
    }

    /// Number of join operations performed (including no-ops).
    pub fn join_count(&self) -> u64 {
        self.joins
    }

    /// Total value ids fed into joins (Σ |input set| over all join
    /// calls) — the work a join actually scans. Semi-naive transfer
    /// functions exist to shrink this number; the raw call count above
    /// barely moves.
    pub fn value_join_count(&self) -> u64 {
        self.value_joins
    }

    /// Number of distinct interned values.
    pub fn distinct_values(&self) -> usize {
        self.vals.len()
    }

    /// Approximate bytes currently held by the delta logs — what a
    /// trim would reclaim. Maintained incrementally (O(1) to read);
    /// the engines key `EngineLimits::store_bytes_watermark` on this.
    pub fn delta_log_bytes(&self) -> usize {
        self.log_bytes
    }

    /// The epoch floor below which delta queries report snapshot loss.
    /// Zero until [`AbsStore::trim_delta_logs`] runs; afterwards the
    /// epoch of the most recent trim — engine-level tests use this to
    /// prove a watermark trim actually fired.
    pub fn delta_log_floor(&self) -> u64 {
        self.log_floor
    }

    /// Approximate resident bytes of the store: the interner pools, the
    /// row table, the flow snapshots, and the delta logs. Heap owned
    /// inside individual values is not chased, so treat this as a
    /// comparison metric across engine configurations rather than an
    /// allocator audit. The engine's `store_bytes_watermark` keys delta
    /// log trimming on this number.
    pub fn approx_bytes(&self) -> usize {
        let mut bytes = std::mem::size_of::<Self>()
            + self.addrs.approx_bytes()
            + self.vals.approx_bytes()
            + self.rows.capacity() * std::mem::size_of::<Row>();
        for row in &self.rows {
            if let Some(ids) = &row.ids {
                bytes += ids.len() * std::mem::size_of::<u32>();
            }
            bytes += row.log.capacity() * std::mem::size_of::<u32>()
                + row.marks.capacity() * std::mem::size_of::<(u64, u32)>();
        }
        bytes
    }

    /// Iterates over `(address, materialized flow set)` pairs for every
    /// bound address, in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (&A, FlowSet<V>)>
    where
        V: Ord,
    {
        self.rows
            .iter()
            .enumerate()
            .filter(|(_, row)| row.bound)
            .map(|(i, row)| {
                let set: FlowSet<V> = row
                    .ids
                    .as_deref()
                    .into_iter()
                    .flatten()
                    .map(|&id| self.vals.get(id).clone())
                    .collect();
                (self.addrs.get(i as u32), set)
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn join_reports_growth() {
        let mut s: AbsStore<u32, u32> = AbsStore::new();
        assert!(s.join(1, [10]));
        assert!(!s.join(1, [10]), "joining an existing value is a no-op");
        assert!(s.join(1, [11]));
        assert_eq!(s.read(&1).len(), 2);
    }

    #[test]
    fn unbound_reads_are_bottom() {
        let s: AbsStore<u32, u32> = AbsStore::new();
        assert!(s.read(&99).is_empty());
        assert!(s.read_flow(&99).is_empty());
    }

    #[test]
    fn fact_count_sums_sets() {
        let mut s: AbsStore<u32, u32> = AbsStore::new();
        s.join(1, [1, 2, 3]);
        s.join(2, [4]);
        assert_eq!(s.fact_count(), 4);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn join_count_tracks_calls() {
        let mut s: AbsStore<u32, u32> = AbsStore::new();
        s.join(1, [1]);
        s.join(1, [1]);
        assert_eq!(s.join_count(), 2);
    }

    #[test]
    fn empty_joins_bind_addresses() {
        // A join with no values still marks the address bound — the
        // store-entry metric counts ⊥-bound addresses, as the original
        // HashMap-of-BTreeSet representation did.
        let mut s: AbsStore<u32, u32> = AbsStore::new();
        assert!(!s.join(7, []));
        assert_eq!(s.len(), 1);
        assert_eq!(s.fact_count(), 0);
    }

    #[test]
    fn shared_reads_are_snapshots() {
        let mut s: AbsStore<u32, u32> = AbsStore::new();
        s.join(1, [10, 20]);
        let before = s.read_flow(&1);
        s.join(1, [30]);
        let after = s.read_flow(&1);
        assert_eq!(before.len(), 2, "old view untouched by copy-on-grow");
        assert_eq!(after.len(), 3);
    }

    #[test]
    fn join_ids_reports_exact_delta() {
        let mut s: AbsStore<u32, u32> = AbsStore::new();
        s.join(1, [10, 20, 30]);
        let a = s.addr_id(&1);
        let (id15, id20, id40) = (s.val_id(15), s.val_id(20), s.val_id(40));
        let mut ids = vec![id15, id20, id40];
        ids.sort_unstable();
        let mut delta = Vec::new();
        assert!(s.join_ids(a, &ids, &mut delta));
        let mut expect = vec![id15, id40];
        expect.sort_unstable();
        assert_eq!(delta, expect, "delta holds exactly the new ids");
    }

    #[test]
    fn epochs_advance_only_on_growth() {
        let mut s: AbsStore<u32, u32> = AbsStore::new();
        s.join(1, [10]);
        let a = s.addr_id(&1);
        let e1 = s.addr_epoch(a);
        assert!(e1 > 0);
        s.join(1, [10]);
        assert_eq!(s.addr_epoch(a), e1, "no-op join leaves the epoch");
        s.join(1, [11]);
        assert!(s.addr_epoch(a) > e1);
        assert_eq!(s.epoch(), s.addr_epoch(a));
    }

    #[test]
    fn merge_from_remaps_ids_and_unions_rows() {
        // The two stores intern in different orders, so their dense ids
        // disagree; the merge must union by *value*, not by id.
        let mut a: AbsStore<u32, u32> = AbsStore::new();
        a.join(1, [10, 20]);
        a.join(2, []);
        let mut b: AbsStore<u32, u32> = AbsStore::new();
        b.join(3, [30]);
        b.join(1, [40, 20]);
        a.merge_from(&b);
        assert_eq!(a.read(&1), [10, 20, 40].into_iter().collect());
        assert_eq!(a.read(&3), [30].into_iter().collect());
        assert_eq!(a.len(), 3, "bound-⊥ address 2 stays bound");
        assert_eq!(a.fact_count(), 4);
    }

    #[test]
    fn merge_from_is_idempotent_at_fixpoint() {
        let mut a: AbsStore<u32, u32> = AbsStore::new();
        a.join(1, [10]);
        let b = a.clone();
        let facts = a.fact_count();
        let epoch = a.epoch();
        a.merge_from(&b);
        assert_eq!(a.fact_count(), facts);
        assert_eq!(a.epoch(), epoch, "no-op merge performs no growing join");
    }

    #[test]
    fn delta_since_returns_exactly_the_later_growth() {
        let mut s: AbsStore<u32, u32> = AbsStore::new();
        s.join(1, [10, 20]);
        let a = s.addr_id(&1);
        let e1 = s.epoch();
        s.join(1, [20, 30]);
        s.join(1, [40]);
        // Since the beginning: everything, in arrival order.
        let all: Vec<u32> = s.delta_ids_since(a, 0).unwrap().to_vec();
        assert_eq!(all.len(), 4);
        // Since e1: only the two later waves.
        let late = s.delta_ids_since(a, e1).unwrap();
        let late_vals: BTreeSet<u32> = late.iter().map(|&id| *s.val(id)).collect();
        assert_eq!(late_vals, [30u32, 40].into_iter().collect());
        // Since the current epoch: nothing.
        assert_eq!(s.delta_ids_since(a, s.epoch()).unwrap(), &[] as &[u32]);
    }

    #[test]
    fn delta_since_spans_two_waves_without_losing_the_first() {
        // The classic semi-naive reset bug: growth arriving in two
        // separate waves must both be visible to a reader baselined
        // before wave one.
        let mut s: AbsStore<u32, u32> = AbsStore::new();
        let a = s.addr_id(&1);
        let base = s.epoch();
        s.join(1, [1, 2]); // wave 1
        s.join(2, [99]); // unrelated traffic in between
        s.join(1, [3]); // wave 2
        let delta: BTreeSet<u32> = s
            .delta_ids_since(a, base)
            .unwrap()
            .iter()
            .map(|&id| *s.val(id))
            .collect();
        assert_eq!(delta, [1u32, 2, 3].into_iter().collect());
    }

    #[test]
    fn trimmed_logs_report_snapshot_loss_then_resume() {
        let mut s: AbsStore<u32, u32> = AbsStore::new();
        s.join(1, [10]);
        let a = s.addr_id(&1);
        let pre_trim = s.epoch();
        s.trim_delta_logs();
        // Baselines behind the trim are unanswerable.
        assert!(s.delta_ids_since(a, 0).is_none());
        // At-or-after the trim, logging has resumed.
        assert_eq!(s.delta_ids_since(a, pre_trim).unwrap(), &[] as &[u32]);
        s.join(1, [11]);
        let post: Vec<u32> = s
            .delta_ids_since(a, pre_trim)
            .unwrap()
            .iter()
            .map(|&id| *s.val(id))
            .collect();
        assert_eq!(post, vec![11]);
    }

    #[test]
    fn merge_from_appends_to_delta_logs() {
        // A broadcast merge must leave the receiving replica's delta
        // logs as if the facts had been joined locally: a config
        // baselined before the merge sees the merged growth as delta.
        let mut home: AbsStore<u32, u32> = AbsStore::new();
        home.join(1, [10]);
        let a = home.addr_id(&1);
        let baseline = home.epoch();
        let mut remote: AbsStore<u32, u32> = AbsStore::new();
        remote.join(1, [20, 10]);
        remote.join(3, [30]);
        home.merge_from(&remote);
        let delta: BTreeSet<u32> = home
            .delta_ids_since(a, baseline)
            .unwrap()
            .iter()
            .map(|&id| *home.val(id))
            .collect();
        assert_eq!(delta, [20u32].into_iter().collect(), "only 20 is new");
        let a3 = home.lookup_addr(&3).unwrap();
        let delta3: BTreeSet<u32> = home
            .delta_ids_since(a3, baseline)
            .unwrap()
            .iter()
            .map(|&id| *home.val(id))
            .collect();
        assert_eq!(delta3, [30u32].into_iter().collect());
    }

    #[test]
    fn merged_deltas_match_a_sequential_schedule() {
        // Deterministic 2-worker scenario: the home replica joins some
        // facts locally and receives the rest via merge_from (the
        // broadcast-merge path). A sequential store applies the same
        // facts in the same order directly. The pending deltas for a
        // config baselined at the common start must coincide.
        let mut seq: AbsStore<u32, u32> = AbsStore::new();
        let mut home: AbsStore<u32, u32> = AbsStore::new();
        let (sa, ha) = (seq.addr_id(&7), home.addr_id(&7));
        let baseline_seq = seq.epoch();
        let baseline_home = home.epoch();

        // Step 1: home-local growth.
        seq.join(7, [1, 2]);
        home.join(7, [1, 2]);
        // Step 2: remote worker growth, delivered by merge.
        let mut remote: AbsStore<u32, u32> = AbsStore::new();
        remote.join(7, [2, 3]);
        remote.join(8, [4]);
        seq.join(7, [2, 3]);
        seq.join(8, [4]);
        home.merge_from(&remote);
        // Step 3: more home-local growth after the merge.
        seq.join(7, [5]);
        home.join(7, [5]);

        let seq_delta: BTreeSet<u32> = seq
            .delta_ids_since(sa, baseline_seq)
            .unwrap()
            .iter()
            .map(|&id| *seq.val(id))
            .collect();
        let home_delta: BTreeSet<u32> = home
            .delta_ids_since(ha, baseline_home)
            .unwrap()
            .iter()
            .map(|&id| *home.val(id))
            .collect();
        assert_eq!(seq_delta, home_delta);
        assert_eq!(seq_delta, [1u32, 2, 3, 5].into_iter().collect());
        assert_eq!(seq.fact_count(), home.fact_count());
    }

    #[test]
    fn value_join_count_tracks_input_sizes() {
        let mut s: AbsStore<u32, u32> = AbsStore::new();
        s.join(1, [1, 2, 3]);
        s.join(1, [3]);
        assert_eq!(s.value_join_count(), 4);
    }

    #[test]
    fn model_based_random_ops_match_btreeset_semantics() {
        // Model-based differential test: the interned/sorted-vec store
        // must agree with the obvious HashMap<A, BTreeSet<V>> model on
        // random join/read sequences (including growth signals).
        let mut s: AbsStore<u64, u64> = AbsStore::new();
        let mut model: HashMap<u64, BTreeSet<u64>> = HashMap::new();
        let mut state: u64 = 0x9e3779b97f4a7c15;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..5_000 {
            let addr = rng() % 17;
            let n = (rng() % 4) as usize;
            let values: Vec<u64> = (0..n).map(|_| rng() % 23).collect();
            let grew = s.join(addr, values.iter().copied());
            let set = model.entry(addr).or_default();
            let before = set.len();
            set.extend(values.iter().copied());
            assert_eq!(grew, set.len() != before, "growth signals agree");
            let probe = rng() % 17;
            assert_eq!(
                s.read(&probe),
                model.get(&probe).cloned().unwrap_or_default(),
                "reads agree at {probe}"
            );
        }
        assert_eq!(s.len(), model.len());
        assert_eq!(
            s.fact_count(),
            model.values().map(BTreeSet::len).sum::<usize>()
        );
    }
}

//! Abstract domains shared by all the CPS analyzers.
//!
//! * [`CallString`] — bounded sequences of call-site labels. They serve as
//!   k-CFA's abstract *times* (`Time = Callᵏ`, §3.5.1) and as m-CFA's
//!   abstract *environments* (`Env = Callᵐ`, §5.3).
//! * [`AbsBasic`] — first-order constants with a flat lattice per type
//!   (literal integers stay precise; arithmetic widens to [`AbsBasic::AnyInt`]).
//! * [`AVal`] — abstract values, generic over the machine's environment
//!   representation `E` and address type `A`: closures, basics, and
//!   store-allocated pairs.

use cfa_syntax::cps::{Label, LamId, Lit};
use cfa_syntax::intern::Symbol;
use std::fmt;

/// How many labels a [`CallString`] stores inline before spilling to the
/// heap. Context depths beyond 4 are exotic in practice (the paper's
/// experiments stop at k = 3), so the common case never allocates.
const CS_INLINE: usize = 4;

#[derive(Clone)]
enum CsRepr {
    /// Up to [`CS_INLINE`] labels, most recent first; slots past `len`
    /// are padding.
    Inline { len: u8, buf: [Label; CS_INLINE] },
    /// The spill representation for bounds above [`CS_INLINE`].
    Heap(Vec<Label>),
}

/// A bounded call string: the most recent label first.
///
/// `CallString::empty().push(l1, k).push(l2, k)` is `⌊l2, l1⌋ₖ`.
///
/// Strings of length ≤ 4 are stored inline (no heap allocation): call
/// strings are cloned into every abstract address the analyses mint, so
/// their clone cost sits directly on the hot path. Equality, ordering,
/// and hashing are defined on [`CallString::labels`] and therefore
/// independent of the representation.
///
/// # Examples
///
/// ```
/// use cfa_core::domain::CallString;
/// use cfa_syntax::cps::Label;
///
/// let cs = CallString::empty().push(Label(1), 2).push(Label(2), 2).push(Label(3), 2);
/// assert_eq!(cs.labels(), &[Label(3), Label(2)]);
/// ```
#[derive(Clone)]
pub struct CallString(CsRepr);

impl Default for CallString {
    fn default() -> Self {
        CallString::empty()
    }
}

impl CallString {
    /// The empty call string (the initial abstract time / environment).
    pub fn empty() -> Self {
        CallString(CsRepr::Inline {
            len: 0,
            buf: [Label(0); CS_INLINE],
        })
    }

    fn from_vec(v: Vec<Label>) -> Self {
        if v.len() <= CS_INLINE {
            let mut buf = [Label(0); CS_INLINE];
            buf[..v.len()].copy_from_slice(&v);
            CallString(CsRepr::Inline {
                len: v.len() as u8,
                buf,
            })
        } else {
            CallString(CsRepr::Heap(v))
        }
    }

    /// Builds a call string from labels, most recent first, truncated to
    /// `bound`.
    pub fn from_labels(labels: impl IntoIterator<Item = Label>, bound: usize) -> Self {
        Self::from_vec(labels.into_iter().take(bound).collect())
    }

    /// `firstₖ(label : self)` — prepend and truncate.
    pub fn push(&self, label: Label, bound: usize) -> Self {
        if bound == 0 {
            return CallString::empty();
        }
        let keep = (bound - 1).min(self.len());
        if bound <= CS_INLINE {
            let mut buf = [Label(0); CS_INLINE];
            buf[0] = label;
            buf[1..=keep].copy_from_slice(&self.labels()[..keep]);
            return CallString(CsRepr::Inline {
                len: (keep + 1) as u8,
                buf,
            });
        }
        let mut v = Vec::with_capacity(keep + 1);
        v.push(label);
        v.extend_from_slice(&self.labels()[..keep]);
        Self::from_vec(v)
    }

    /// The labels, most recent first.
    pub fn labels(&self) -> &[Label] {
        match &self.0 {
            CsRepr::Inline { len, buf } => &buf[..*len as usize],
            CsRepr::Heap(v) => v,
        }
    }

    /// Length of the string.
    pub fn len(&self) -> usize {
        match &self.0 {
            CsRepr::Inline { len, .. } => *len as usize,
            CsRepr::Heap(v) => v.len(),
        }
    }

    /// Whether the string is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

// Representation-independent equivalence: two call strings are the same
// abstract time iff their label sequences agree, whether inline or
// spilled.
impl PartialEq for CallString {
    fn eq(&self, other: &Self) -> bool {
        self.labels() == other.labels()
    }
}

impl Eq for CallString {}

impl PartialOrd for CallString {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for CallString {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.labels().cmp(other.labels())
    }
}

impl std::hash::Hash for CallString {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.labels().hash(state);
    }
}

impl fmt::Display for CallString {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨")?;
        for (i, l) in self.labels().iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{l}")?;
        }
        write!(f, "⟩")
    }
}

impl fmt::Debug for CallString {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// An abstract first-order constant.
///
/// Integer and boolean *literals* stay precise (they flow through the
/// analysis unchanged, which the paper's §6 identity example relies on);
/// operations that can create unboundedly many constants widen to the
/// per-type top.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum AbsBasic {
    /// A known integer.
    Int(i64),
    /// Any integer (result of arithmetic).
    AnyInt,
    /// A known boolean.
    Bool(bool),
    /// Any boolean (result of comparisons and predicates).
    AnyBool,
    /// Any string.
    Str,
    /// A known symbol.
    Sym(Symbol),
    /// The empty list.
    Nil,
    /// The unspecified value.
    Void,
}

impl AbsBasic {
    /// Abstracts a syntactic literal.
    pub fn from_lit(lit: Lit) -> AbsBasic {
        match lit {
            Lit::Int(n) => AbsBasic::Int(n),
            Lit::Bool(b) => AbsBasic::Bool(b),
            Lit::Nil => AbsBasic::Nil,
            Lit::Str(_) => AbsBasic::Str,
            Lit::Sym(s) => AbsBasic::Sym(s),
            Lit::Void => AbsBasic::Void,
        }
    }

    /// Can this constant be truthy (anything but `#f`)?
    pub fn maybe_truthy(self) -> bool {
        !matches!(self, AbsBasic::Bool(false))
    }

    /// Can this constant be `#f`?
    pub fn maybe_falsy(self) -> bool {
        matches!(self, AbsBasic::Bool(false) | AbsBasic::AnyBool)
    }
}

impl fmt::Display for AbsBasic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AbsBasic::Int(n) => write!(f, "{n}"),
            AbsBasic::AnyInt => write!(f, "int⊤"),
            AbsBasic::Bool(true) => write!(f, "#t"),
            AbsBasic::Bool(false) => write!(f, "#f"),
            AbsBasic::AnyBool => write!(f, "bool⊤"),
            AbsBasic::Str => write!(f, "str⊤"),
            AbsBasic::Sym(s) => write!(f, "'sym{}", s.index()),
            AbsBasic::Nil => write!(f, "()"),
            AbsBasic::Void => write!(f, "#void"),
        }
    }
}

/// An abstract value, generic over environment representation `E` and
/// address type `A`.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum AVal<E, A> {
    /// An abstract closure `(lam, ê)`.
    Clo {
        /// The λ-term.
        lam: LamId,
        /// The abstract environment.
        env: E,
    },
    /// An abstract constant.
    Basic(AbsBasic),
    /// An abstract pair whose halves live at abstract addresses.
    Pair {
        /// Address of the car.
        car: A,
        /// Address of the cdr.
        cdr: A,
    },
    /// An abstract thread handle produced by `%spawn`. It carries the
    /// abstract address where the spawned thread's result accumulates;
    /// `%join` synchronizes by reading that address. Machines mint `ret`
    /// from the spawn site and the child's thread-id context, so the
    /// handle also identifies the abstract thread.
    Tid {
        /// The thread's abstract result address.
        ret: A,
    },
    /// The thread-return continuation passed to a spawned thunk:
    /// applying it joins the argument into the thread's result address
    /// and produces no successor (the abstract thread halts).
    RetK {
        /// The thread's abstract result address.
        ret: A,
    },
    /// An abstract atomic reference cell (`atom`); the contents
    /// accumulate monotonically at `cell`.
    Atom {
        /// Address of the cell contents.
        cell: A,
    },
}

impl<E, A> AVal<E, A> {
    /// Can this value be truthy?
    pub fn maybe_truthy(&self) -> bool {
        match self {
            AVal::Basic(b) => b.maybe_truthy(),
            _ => true,
        }
    }

    /// Can this value be `#f`?
    pub fn maybe_falsy(&self) -> bool {
        match self {
            AVal::Basic(b) => b.maybe_falsy(),
            _ => false,
        }
    }

    /// The closure parts, if this is a closure.
    pub fn as_clo(&self) -> Option<(LamId, &E)> {
        match self {
            AVal::Clo { lam, env } => Some((*lam, env)),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_truncates_to_bound() {
        let cs = CallString::empty();
        let cs = cs.push(Label(1), 1);
        let cs = cs.push(Label(2), 1);
        assert_eq!(cs.labels(), &[Label(2)]);
    }

    #[test]
    fn bound_zero_is_always_empty() {
        let cs = CallString::empty().push(Label(9), 0);
        assert!(cs.is_empty());
    }

    #[test]
    fn push_keeps_most_recent_first() {
        let cs = CallString::empty()
            .push(Label(1), 3)
            .push(Label(2), 3)
            .push(Label(3), 3)
            .push(Label(4), 3);
        assert_eq!(cs.labels(), &[Label(4), Label(3), Label(2)]);
    }

    #[test]
    fn from_labels_truncates() {
        let cs = CallString::from_labels([Label(1), Label(2), Label(3)], 2);
        assert_eq!(cs.labels(), &[Label(1), Label(2)]);
    }

    #[test]
    fn deep_strings_spill_and_behave() {
        // k = 7 exceeds the inline capacity; pushes must still keep
        // most-recent-first order and the bound.
        let mut cs = CallString::empty();
        for i in 0..10 {
            cs = cs.push(Label(i), 7);
        }
        assert_eq!(cs.len(), 7);
        assert_eq!(cs.labels()[0], Label(9));
        assert_eq!(cs.labels()[6], Label(3));
    }

    #[test]
    fn spilled_and_inline_strings_compare_by_labels() {
        // Build the same 3-label sequence through a deep (spilled) bound
        // and a shallow (inline) bound; they must be equal and hash alike.
        let deep = CallString::from_labels((0..9).map(Label), 9);
        let trimmed = CallString::from_labels(deep.labels().iter().copied(), 3);
        let inline = CallString::empty()
            .push(Label(2), 3)
            .push(Label(1), 3)
            .push(Label(0), 3);
        assert_eq!(trimmed, inline);
        assert_eq!(trimmed.cmp(&inline), std::cmp::Ordering::Equal);
        let hash = |cs: &CallString| {
            use std::hash::{Hash, Hasher};
            let mut h = std::collections::hash_map::DefaultHasher::new();
            cs.hash(&mut h);
            h.finish()
        };
        assert_eq!(hash(&trimmed), hash(&inline));
    }

    #[test]
    fn push_at_inline_boundary_keeps_order() {
        let mut cs = CallString::empty();
        for i in 0..6 {
            cs = cs.push(Label(i), 4);
        }
        assert_eq!(cs.labels(), &[Label(5), Label(4), Label(3), Label(2)]);
    }

    #[test]
    fn truthiness_of_basics() {
        assert!(AbsBasic::Int(0).maybe_truthy());
        assert!(!AbsBasic::Int(0).maybe_falsy());
        assert!(!AbsBasic::Bool(false).maybe_truthy());
        assert!(AbsBasic::Bool(false).maybe_falsy());
        assert!(AbsBasic::AnyBool.maybe_truthy());
        assert!(AbsBasic::AnyBool.maybe_falsy());
    }

    #[test]
    fn closures_and_pairs_are_truthy() {
        let v: AVal<u32, u32> = AVal::Clo {
            lam: LamId(0),
            env: 0,
        };
        assert!(v.maybe_truthy() && !v.maybe_falsy());
        let p: AVal<u32, u32> = AVal::Pair { car: 1, cdr: 2 };
        assert!(p.maybe_truthy() && !p.maybe_falsy());
    }

    #[test]
    fn lit_abstraction_keeps_constants() {
        assert_eq!(AbsBasic::from_lit(Lit::Int(7)), AbsBasic::Int(7));
        assert_eq!(AbsBasic::from_lit(Lit::Bool(false)), AbsBasic::Bool(false));
        assert_eq!(AbsBasic::from_lit(Lit::Nil), AbsBasic::Nil);
    }
}

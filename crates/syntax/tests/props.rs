//! Property tests for the front end: reader round-trips and CPS
//! conversion invariants.

use cfa_syntax::cps::{AExp, CallKind, CpsProgram};
use cfa_syntax::sexpr::{parse_one, Sexpr};
use proptest::prelude::*;

// ---------------------------------------------------------------------
// S-expression round trips
// ---------------------------------------------------------------------

fn arb_sexpr() -> impl Strategy<Value = Sexpr> {
    let pos = cfa_syntax::sexpr::Pos { line: 1, col: 1 };
    let leaf = prop_oneof![
        any::<i64>().prop_map(move |n| Sexpr::Int(pos, n)),
        any::<bool>().prop_map(move |b| Sexpr::Bool(pos, b)),
        "[a-z][a-z0-9-]{0,8}".prop_map(move |s| Sexpr::Symbol(pos, s)),
        "[a-zA-Z0-9 ]{0,12}".prop_map(move |s| Sexpr::Str(pos, s)),
    ];
    leaf.prop_recursive(4, 32, 5, move |inner| {
        prop::collection::vec(inner, 0..5).prop_map(move |items| Sexpr::List(pos, items))
    })
}

/// Structural equality ignoring positions.
fn same_shape(a: &Sexpr, b: &Sexpr) -> bool {
    match (a, b) {
        (Sexpr::Int(_, x), Sexpr::Int(_, y)) => x == y,
        (Sexpr::Bool(_, x), Sexpr::Bool(_, y)) => x == y,
        (Sexpr::Symbol(_, x), Sexpr::Symbol(_, y)) => x == y,
        (Sexpr::Str(_, x), Sexpr::Str(_, y)) => x == y,
        (Sexpr::List(_, xs), Sexpr::List(_, ys)) => {
            xs.len() == ys.len() && xs.iter().zip(ys).all(|(x, y)| same_shape(x, y))
        }
        _ => false,
    }
}

proptest! {
    #[test]
    fn sexpr_display_parses_back(e in arb_sexpr()) {
        let printed = e.to_string();
        let reparsed = parse_one(&printed)
            .unwrap_or_else(|err| panic!("failed to re-read {printed:?}: {err}"));
        prop_assert!(same_shape(&e, &reparsed), "{printed}");
    }
}

// ---------------------------------------------------------------------
// CPS conversion invariants over generated-looking sources
// ---------------------------------------------------------------------

/// All binder symbols in a program are unique (alpha-renaming worked).
fn binders_are_unique(p: &CpsProgram) -> bool {
    let mut seen = std::collections::BTreeSet::new();
    for l in p.lam_ids() {
        for &param in &p.lam(l).params {
            if !seen.insert(param) {
                return false;
            }
        }
    }
    for c in p.call_ids() {
        if let CallKind::Fix { bindings, .. } = &p.call(c).kind {
            for (v, _) in bindings {
                if !seen.insert(*v) {
                    return false;
                }
            }
        }
    }
    true
}

/// Every variable reference is bound by some binder or is a free
/// variable of the whole program (there are none for closed programs).
fn closed(p: &CpsProgram) -> bool {
    let bound: std::collections::BTreeSet<_> = p.bound_vars().into_iter().collect();
    let mut ok = true;
    let mut check = |e: &AExp| {
        if let AExp::Var(v) = e {
            if !bound.contains(v) {
                ok = false;
            }
        }
    };
    for c in p.call_ids() {
        match &p.call(c).kind {
            CallKind::App { func, args } => {
                check(func);
                args.iter().for_each(&mut check);
            }
            CallKind::If { cond, .. } => check(cond),
            CallKind::PrimCall { args, cont, .. } => {
                args.iter().for_each(&mut check);
                check(cont);
            }
            CallKind::Fix { .. } => {}
            CallKind::Spawn { thunk, cont } => {
                check(thunk);
                check(cont);
            }
            CallKind::Join { target, cont } => {
                check(target);
                check(cont);
            }
            CallKind::Halt { value } => check(value),
        }
    }
    ok
}

const SOURCES: &[&str] = &[
    "((lambda (x) ((lambda (x) x) x)) 1)",
    "(let ((x 1) (y 2)) (let ((x y)) x))",
    "(define (f x) (if (zero? x) x (f (- x 1)))) (f 5)",
    "(letrec ((odd (lambda (n) (if (zero? n) #f (even (- n 1)))))
              (even (lambda (n) (if (zero? n) #t (odd (- n 1))))))
       (odd 3))",
    "(cond ((zero? 1) 'a) ((zero? 0) 'b) (else 'c))",
    "(and 1 (or #f 2) 3)",
    "(let ((c (atom 0))) (let ((t (spawn (reset! c 1)))) (join t) (deref c)))",
    "(let ((c (atom 0))) (let ((t (spawn (cas! c 0 1)))) (join t)))",
];

#[test]
fn conversion_produces_unique_binders() {
    for src in SOURCES {
        let p = cfa_syntax::compile(src).unwrap();
        assert!(binders_are_unique(&p), "{src}");
    }
}

#[test]
fn conversion_produces_closed_programs() {
    for src in SOURCES {
        let p = cfa_syntax::compile(src).unwrap();
        assert!(closed(&p), "{src}");
    }
}

#[test]
fn labels_are_dense_and_unique() {
    for src in SOURCES {
        let p = cfa_syntax::compile(src).unwrap();
        let mut labels: Vec<u32> = Vec::new();
        for l in p.lam_ids() {
            labels.push(p.lam(l).label.0);
        }
        for c in p.call_ids() {
            labels.push(p.call(c).label.0);
        }
        labels.sort();
        let n = labels.len();
        labels.dedup();
        assert_eq!(labels.len(), n, "{src}: duplicate labels");
        assert!(
            labels.iter().all(|&l| l < p.label_count()),
            "{src}: label range"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Random integer-expression sources convert to closed programs
    /// with unique binders.
    #[test]
    fn random_arith_sources_convert_cleanly(
        a in -100i64..100, b in -100i64..100, c in 1i64..50, pick in 0usize..4
    ) {
        let src = match pick {
            0 => format!("(+ {a} (* {b} {c}))"),
            1 => format!("(let ((x {a})) (if (zero? x) {b} (- x {c})))"),
            2 => format!("((lambda (f) (f {a})) (lambda (n) (+ n {b})))"),
            _ => format!("(car (cons {a} (cons {b} {c})))"),
        };
        let p = cfa_syntax::compile(&src).unwrap();
        prop_assert!(binders_are_unique(&p));
        prop_assert!(closed(&p));
    }
}

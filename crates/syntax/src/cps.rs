//! The CPS core language.
//!
//! This is Shivers's partitioned CPS (Figure 3 of the paper) extended with
//! the forms needed to express the paper's benchmark suite: literals,
//! primitive applications, a binary branch, `letrec` (as `%fix`), and a
//! terminal `%halt`. Every λ-term and every call site carries a unique
//! [`Label`]; λ-terms are partitioned into *procedures* (user functions)
//! and *continuations* — the ΔCFA partitioning that m-CFA's environment
//! allocator consults (§5.3).
//!
//! Terms are stored in arenas owned by a [`CpsProgram`]; the tree is
//! addressed by [`LamId`] and [`CallId`] indices so that the analyzers can
//! key their maps on `Copy` ids.

use crate::intern::{Interner, Symbol};
use std::collections::BTreeSet;
use std::fmt;

/// A unique label attached to every λ-term and call site.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Label(pub u32);

impl fmt::Debug for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ℓ{}", self.0)
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Index of a λ-term in a [`CpsProgram`] arena.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct LamId(pub u32);

/// Index of a call site in a [`CpsProgram`] arena.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct CallId(pub u32);

/// Whether a λ-term is a user procedure or an administrative continuation.
///
/// The CPS converter records this; m-CFA's environment allocator pushes a
/// new frame for procedures and restores the closure's saved environment
/// for continuations (§5.3).
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum LamSort {
    /// A user-written procedure (takes a continuation argument).
    Proc,
    /// An administrative continuation introduced by CPS conversion.
    Cont,
}

/// A literal constant.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Lit {
    /// An integer.
    Int(i64),
    /// A boolean.
    Bool(bool),
    /// The empty list.
    Nil,
    /// An interned string literal.
    Str(Symbol),
    /// An interned quoted symbol.
    Sym(Symbol),
    /// The unspecified value (result of effect-only primitives).
    Void,
}

/// A primitive operation.
///
/// Primitives are strict first-order operations; in CPS they appear in
/// [`CallKind::PrimCall`] with an explicit continuation.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum PrimOp {
    /// Integer addition.
    Add,
    /// Integer subtraction.
    Sub,
    /// Integer multiplication.
    Mul,
    /// Integer (truncating) division.
    Div,
    /// Integer remainder.
    Rem,
    /// Numeric equality `=`.
    NumEq,
    /// Numeric `<`.
    Lt,
    /// Numeric `<=`.
    Le,
    /// Numeric `>`.
    Gt,
    /// Numeric `>=`.
    Ge,
    /// Pointer/constant equality `eq?`.
    Eq,
    /// Pair construction.
    Cons,
    /// First projection of a pair.
    Car,
    /// Second projection of a pair.
    Cdr,
    /// `pair?` predicate.
    IsPair,
    /// `null?` predicate.
    IsNull,
    /// `zero?` predicate.
    IsZero,
    /// `number?` predicate.
    IsNumber,
    /// `boolean?` predicate.
    IsBool,
    /// `procedure?` predicate.
    IsProcedure,
    /// `symbol?` predicate.
    IsSymbol,
    /// `string?` predicate.
    IsString,
    /// Boolean negation.
    Not,
    /// String append (used by the compiler-style workloads).
    StringAppend,
    /// Render any value as a string (used by the compiler-style workloads).
    ToString,
    /// Abort execution with an error value.
    Error,
    /// Allocate a mutable atomic reference cell (`atom`).
    AtomNew,
    /// Read an atomic reference cell (`deref`).
    AtomRead,
    /// Unconditionally overwrite an atomic reference cell (`reset!`) —
    /// the *unsynchronized* write, which is what makes data races
    /// expressible.
    AtomSet,
    /// Compare-and-swap an atomic reference cell (`cas!`): writes the
    /// new value only if the current content equals the expected one,
    /// returning whether the swap happened.
    AtomCas,
}

impl PrimOp {
    /// The surface (Scheme) name of the primitive.
    pub fn name(self) -> &'static str {
        match self {
            PrimOp::Add => "+",
            PrimOp::Sub => "-",
            PrimOp::Mul => "*",
            PrimOp::Div => "quotient",
            PrimOp::Rem => "remainder",
            PrimOp::NumEq => "=",
            PrimOp::Lt => "<",
            PrimOp::Le => "<=",
            PrimOp::Gt => ">",
            PrimOp::Ge => ">=",
            PrimOp::Eq => "eq?",
            PrimOp::Cons => "cons",
            PrimOp::Car => "car",
            PrimOp::Cdr => "cdr",
            PrimOp::IsPair => "pair?",
            PrimOp::IsNull => "null?",
            PrimOp::IsZero => "zero?",
            PrimOp::IsNumber => "number?",
            PrimOp::IsBool => "boolean?",
            PrimOp::IsProcedure => "procedure?",
            PrimOp::IsSymbol => "symbol?",
            PrimOp::IsString => "string?",
            PrimOp::Not => "not",
            PrimOp::StringAppend => "string-append",
            PrimOp::ToString => "->string",
            PrimOp::Error => "error",
            PrimOp::AtomNew => "atom",
            PrimOp::AtomRead => "deref",
            PrimOp::AtomSet => "reset!",
            PrimOp::AtomCas => "cas!",
        }
    }

    /// Looks a primitive up by its surface name.
    pub fn from_name(name: &str) -> Option<Self> {
        use PrimOp::*;
        Some(match name {
            "+" => Add,
            "-" => Sub,
            "*" => Mul,
            "quotient" | "/" => Div,
            "remainder" | "modulo" => Rem,
            "=" => NumEq,
            "<" => Lt,
            "<=" => Le,
            ">" => Gt,
            ">=" => Ge,
            "eq?" | "eqv?" | "equal?" => Eq,
            "cons" => Cons,
            "car" => Car,
            "cdr" => Cdr,
            "pair?" => IsPair,
            "null?" => IsNull,
            "zero?" => IsZero,
            "number?" => IsNumber,
            "boolean?" => IsBool,
            "procedure?" => IsProcedure,
            "symbol?" => IsSymbol,
            "string?" => IsString,
            "not" => Not,
            "string-append" => StringAppend,
            "->string" | "number->string" | "symbol->string" => ToString,
            "error" => Error,
            "atom" => AtomNew,
            "deref" => AtomRead,
            "reset!" => AtomSet,
            "cas!" => AtomCas,
            _ => return None,
        })
    }

    /// Number of value arguments the primitive expects, if fixed.
    pub fn arity(self) -> Option<usize> {
        use PrimOp::*;
        Some(match self {
            Car | Cdr | IsPair | IsNull | IsZero | IsNumber | IsBool | IsProcedure | IsSymbol
            | IsString | Not | ToString | Error | AtomNew | AtomRead => 1,
            Cons | NumEq | Lt | Le | Gt | Ge | Eq | Sub | Div | Rem | AtomSet => 2,
            AtomCas => 3,
            Add | Mul | StringAppend => return None, // variadic
        })
    }
}

impl fmt::Display for PrimOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// An atomic expression: evaluable without a step (Figure 3's `Exp`).
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum AExp {
    /// A variable reference.
    Var(Symbol),
    /// A λ-term.
    Lam(LamId),
    /// A literal constant.
    Lit(Lit),
}

/// The body of a call site.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CallKind {
    /// `(f e₁ … eₙ)` — the only call form of the paper's pure CPS grammar.
    App {
        /// Operator.
        func: AExp,
        /// Operands (the last one is a continuation for `Proc` operators).
        args: Vec<AExp>,
    },
    /// `(%if c call₁ call₂)` — branch on an atomic condition.
    If {
        /// Condition atom.
        cond: AExp,
        /// Taken when the condition is not `#f`.
        then_branch: CallId,
        /// Taken when the condition is `#f`.
        else_branch: CallId,
    },
    /// `(%prim op e₁ … eₙ k)` — apply a primitive, pass the result to `k`.
    PrimCall {
        /// The primitive.
        op: PrimOp,
        /// Value operands.
        args: Vec<AExp>,
        /// Continuation atom receiving the result.
        cont: AExp,
    },
    /// `(%fix ((f lam) …) call)` — mutually recursive procedure bindings.
    Fix {
        /// Recursive bindings; right-hand sides are λ-terms.
        bindings: Vec<(Symbol, LamId)>,
        /// Body call evaluated under the new bindings.
        body: CallId,
    },
    /// `(%spawn thunk k)` — start an abstract thread running `thunk`
    /// (a nullary-source procedure closed over its free variables) and
    /// pass a thread handle to the continuation `k`. The spawned
    /// thread's final value is deposited at its abstract result
    /// address, where `%join` synchronizes on it.
    Spawn {
        /// The thread body: a procedure atom expecting only the
        /// thread-return continuation.
        thunk: AExp,
        /// Continuation receiving the thread handle in the parent.
        cont: AExp,
    },
    /// `(%join t k)` — block until the thread behind handle `t` has
    /// produced its result, then pass that result to `k`.
    Join {
        /// The thread-handle atom.
        target: AExp,
        /// Continuation receiving the joined thread's result.
        cont: AExp,
    },
    /// `(%halt e)` — terminate the program with a final value.
    Halt {
        /// The program's result atom.
        value: AExp,
    },
}

/// A λ-term: `(λ (v₁ … vₙ) call)ℓ`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Lam {
    /// Formal parameters.
    pub params: Vec<Symbol>,
    /// The body call site.
    pub body: CallId,
    /// Procedure vs continuation (ΔCFA partitioning).
    pub sort: LamSort,
    /// Unique label.
    pub label: Label,
}

/// A call site: one of the [`CallKind`] forms, labeled.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Call {
    /// The call's form.
    pub kind: CallKind,
    /// Unique label.
    pub label: Label,
}

/// A whole CPS program: term arenas, interner, entry call.
///
/// Construct programs with [`CpsBuilder`] or via
/// [`crate::convert::cps_convert`].
#[derive(Clone, Debug)]
pub struct CpsProgram {
    interner: Interner,
    lams: Vec<Lam>,
    calls: Vec<Call>,
    free_vars: Vec<Vec<Symbol>>,
    entry: CallId,
    next_label: u32,
}

impl CpsProgram {
    /// The entry call site.
    pub fn entry(&self) -> CallId {
        self.entry
    }

    /// The λ-term for `id`.
    pub fn lam(&self, id: LamId) -> &Lam {
        &self.lams[id.0 as usize]
    }

    /// The call site for `id`.
    pub fn call(&self, id: CallId) -> &Call {
        &self.calls[id.0 as usize]
    }

    /// Free variables of λ-term `id`, sorted.
    pub fn free_vars(&self, id: LamId) -> &[Symbol] {
        &self.free_vars[id.0 as usize]
    }

    /// The program's interner (read-only).
    pub fn interner(&self) -> &Interner {
        &self.interner
    }

    /// Resolves a symbol to its name.
    pub fn name(&self, sym: Symbol) -> &str {
        self.interner.resolve(sym)
    }

    /// Number of λ-terms.
    pub fn lam_count(&self) -> usize {
        self.lams.len()
    }

    /// Number of call sites.
    pub fn call_count(&self) -> usize {
        self.calls.len()
    }

    /// Iterates over all λ-term ids.
    pub fn lam_ids(&self) -> impl Iterator<Item = LamId> {
        (0..self.lams.len() as u32).map(LamId)
    }

    /// Iterates over all call-site ids.
    pub fn call_ids(&self) -> impl Iterator<Item = CallId> {
        (0..self.calls.len() as u32).map(CallId)
    }

    /// One more than the largest label in the program; labels are dense in
    /// `0..label_count()`, so analyzers can use label-indexed vectors.
    pub fn label_count(&self) -> u32 {
        self.next_label
    }

    /// Total number of terms (λ-terms + call sites + atomic expressions),
    /// the "Terms" size measure used in the paper's §6.1.1 table.
    pub fn term_count(&self) -> usize {
        let mut n = self.lams.len() + self.calls.len();
        for call in &self.calls {
            n += match &call.kind {
                CallKind::App { args, .. } => 1 + args.len(),
                CallKind::If { .. } => 1,
                CallKind::PrimCall { args, .. } => 2 + args.len(),
                CallKind::Fix { bindings, .. } => bindings.len(),
                CallKind::Spawn { .. } | CallKind::Join { .. } => 2,
                CallKind::Halt { .. } => 1,
            };
        }
        n
    }

    /// All variables bound anywhere in the program (λ parameters and
    /// `%fix` binders), sorted.
    pub fn bound_vars(&self) -> Vec<Symbol> {
        let mut set = BTreeSet::new();
        for lam in &self.lams {
            set.extend(lam.params.iter().copied());
        }
        for call in &self.calls {
            if let CallKind::Fix { bindings, .. } = &call.kind {
                set.extend(bindings.iter().map(|(v, _)| *v));
            }
        }
        set.into_iter().collect()
    }

    /// The user (procedure) call sites: `App` calls whose operator is not a
    /// syntactic continuation λ. Used by the inlining precision metric.
    pub fn is_user_call(&self, id: CallId) -> bool {
        match &self.call(id).kind {
            CallKind::App { func, .. } => match func {
                AExp::Lam(l) => self.lam(*l).sort == LamSort::Proc,
                // Variable operators may be user procs; variable references
                // to continuation parameters are counted too — the metric
                // filters by what *flows* there, not by syntax.
                AExp::Var(_) => true,
                AExp::Lit(_) => false,
            },
            _ => false,
        }
    }
}

/// Incremental builder for [`CpsProgram`].
///
/// # Examples
///
/// Build `((λ (x k) (k x)) (λ (y) (%halt y)))` — apply an identity-like
/// procedure to a halt continuation:
///
/// ```
/// use cfa_syntax::cps::{AExp, CpsBuilder, LamSort};
///
/// let mut b = CpsBuilder::new();
/// let x = b.intern("x");
/// let k = b.intern("k");
/// let y = b.intern("y");
///
/// let halt = b.call_halt(AExp::Var(y));
/// let kont = b.lam(vec![y], halt, LamSort::Cont);
/// let body = b.call_app(AExp::Var(k), vec![AExp::Var(x)]);
/// let proc_ = b.lam(vec![x, k], body, LamSort::Proc);
/// let entry = b.call_app(AExp::Lam(proc_), vec![AExp::Lam(kont)]);
/// let program = b.finish(entry);
///
/// assert_eq!(program.lam_count(), 2);
/// assert_eq!(program.free_vars(kont), &[] as &[_]);
/// ```
#[derive(Default, Debug)]
pub struct CpsBuilder {
    interner: Interner,
    lams: Vec<Lam>,
    calls: Vec<Call>,
    next_label: u32,
}

impl CpsBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a builder seeded with an existing interner, so symbols
    /// produced by an earlier pipeline stage (e.g. the Scheme parser)
    /// remain valid in the finished program.
    pub fn with_interner(interner: Interner) -> Self {
        CpsBuilder {
            interner,
            ..Self::default()
        }
    }

    /// Interns a name.
    pub fn intern(&mut self, name: &str) -> Symbol {
        self.interner.intern(name)
    }

    /// Access to the interner for read-backs during construction.
    pub fn interner(&self) -> &Interner {
        &self.interner
    }

    fn fresh_label(&mut self) -> Label {
        let l = Label(self.next_label);
        self.next_label += 1;
        l
    }

    /// Adds a λ-term.
    pub fn lam(&mut self, params: Vec<Symbol>, body: CallId, sort: LamSort) -> LamId {
        let label = self.fresh_label();
        self.lams.push(Lam {
            params,
            body,
            sort,
            label,
        });
        LamId(self.lams.len() as u32 - 1)
    }

    /// Adds a call site with the given kind.
    pub fn call(&mut self, kind: CallKind) -> CallId {
        let label = self.fresh_label();
        self.calls.push(Call { kind, label });
        CallId(self.calls.len() as u32 - 1)
    }

    /// Adds an application call.
    pub fn call_app(&mut self, func: AExp, args: Vec<AExp>) -> CallId {
        self.call(CallKind::App { func, args })
    }

    /// Adds a branch call.
    pub fn call_if(&mut self, cond: AExp, then_branch: CallId, else_branch: CallId) -> CallId {
        self.call(CallKind::If {
            cond,
            then_branch,
            else_branch,
        })
    }

    /// Adds a primitive call.
    pub fn call_prim(&mut self, op: PrimOp, args: Vec<AExp>, cont: AExp) -> CallId {
        self.call(CallKind::PrimCall { op, args, cont })
    }

    /// Adds a `%fix` call.
    pub fn call_fix(&mut self, bindings: Vec<(Symbol, LamId)>, body: CallId) -> CallId {
        self.call(CallKind::Fix { bindings, body })
    }

    /// Adds a `%spawn` call.
    pub fn call_spawn(&mut self, thunk: AExp, cont: AExp) -> CallId {
        self.call(CallKind::Spawn { thunk, cont })
    }

    /// Adds a `%join` call.
    pub fn call_join(&mut self, target: AExp, cont: AExp) -> CallId {
        self.call(CallKind::Join { target, cont })
    }

    /// Adds a `%halt` call.
    pub fn call_halt(&mut self, value: AExp) -> CallId {
        self.call(CallKind::Halt { value })
    }

    /// Finishes the program with `entry` as the initial call, computing
    /// free-variable sets for every λ-term.
    ///
    /// # Panics
    ///
    /// Panics if `entry` is not a call of this builder.
    pub fn finish(self, entry: CallId) -> CpsProgram {
        assert!(
            (entry.0 as usize) < self.calls.len(),
            "entry call is out of range"
        );
        let mut program = CpsProgram {
            interner: self.interner,
            lams: self.lams,
            calls: self.calls,
            free_vars: Vec::new(),
            entry,
            next_label: self.next_label,
        };
        program.free_vars = compute_free_vars(&program);
        program
    }
}

/// Computes, for every λ-term, its free variables (sorted).
fn compute_free_vars(p: &CpsProgram) -> Vec<Vec<Symbol>> {
    // Lams form a tree (each body call belongs to exactly one lam), so a
    // straightforward recursion terminates. We memoize per-lam results
    // because `AExp::Lam` references are shared with the enclosing call.
    fn aexp_free(
        p: &CpsProgram,
        e: &AExp,
        memo: &mut Vec<Option<BTreeSet<Symbol>>>,
    ) -> BTreeSet<Symbol> {
        match e {
            AExp::Var(v) => std::iter::once(*v).collect(),
            AExp::Lit(_) => BTreeSet::new(),
            AExp::Lam(l) => lam_free(p, *l, memo),
        }
    }

    fn call_free(
        p: &CpsProgram,
        c: CallId,
        memo: &mut Vec<Option<BTreeSet<Symbol>>>,
    ) -> BTreeSet<Symbol> {
        let call = p.call(c);
        match &call.kind {
            CallKind::App { func, args } => {
                let mut s = aexp_free(p, func, memo);
                for a in args {
                    s.extend(aexp_free(p, a, memo));
                }
                s
            }
            CallKind::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let mut s = aexp_free(p, cond, memo);
                s.extend(call_free(p, *then_branch, memo));
                s.extend(call_free(p, *else_branch, memo));
                s
            }
            CallKind::PrimCall { args, cont, .. } => {
                let mut s = aexp_free(p, cont, memo);
                for a in args {
                    s.extend(aexp_free(p, a, memo));
                }
                s
            }
            CallKind::Fix { bindings, body } => {
                let mut s = call_free(p, *body, memo);
                for (_, l) in bindings {
                    s.extend(lam_free(p, *l, memo));
                }
                for (v, _) in bindings {
                    s.remove(v);
                }
                s
            }
            CallKind::Spawn { thunk, cont } => {
                let mut s = aexp_free(p, thunk, memo);
                s.extend(aexp_free(p, cont, memo));
                s
            }
            CallKind::Join { target, cont } => {
                let mut s = aexp_free(p, target, memo);
                s.extend(aexp_free(p, cont, memo));
                s
            }
            CallKind::Halt { value } => aexp_free(p, value, memo),
        }
    }

    fn lam_free(
        p: &CpsProgram,
        l: LamId,
        memo: &mut Vec<Option<BTreeSet<Symbol>>>,
    ) -> BTreeSet<Symbol> {
        if let Some(cached) = &memo[l.0 as usize] {
            return cached.clone();
        }
        let lam = p.lam(l);
        let mut s = call_free(p, lam.body, memo);
        for param in &lam.params {
            s.remove(param);
        }
        memo[l.0 as usize] = Some(s.clone());
        s
    }

    let mut memo: Vec<Option<BTreeSet<Symbol>>> = vec![None; p.lams.len()];
    for i in 0..p.lams.len() {
        lam_free(p, LamId(i as u32), &mut memo);
    }
    memo.into_iter()
        .map(|s| s.expect("all lams visited").into_iter().collect())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (CpsProgram, LamId, LamId) {
        // ((λproc (x k) (k x)) (λcont (y) (%halt y)))
        let mut b = CpsBuilder::new();
        let x = b.intern("x");
        let k = b.intern("k");
        let y = b.intern("y");
        let halt = b.call_halt(AExp::Var(y));
        let kont = b.lam(vec![y], halt, LamSort::Cont);
        let body = b.call_app(AExp::Var(k), vec![AExp::Var(x)]);
        let proc_ = b.lam(vec![x, k], body, LamSort::Proc);
        let entry = b.call_app(AExp::Lam(proc_), vec![AExp::Lam(kont)]);
        (b.finish(entry), proc_, kont)
    }

    #[test]
    fn builder_assigns_unique_labels() {
        let (p, proc_, kont) = sample();
        let mut labels = vec![p.lam(proc_).label, p.lam(kont).label];
        for c in p.call_ids() {
            labels.push(p.call(c).label);
        }
        let n = labels.len();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), n, "labels must be unique");
    }

    #[test]
    fn free_vars_of_closed_terms_are_empty() {
        let (p, proc_, kont) = sample();
        assert!(p.free_vars(proc_).is_empty());
        assert!(p.free_vars(kont).is_empty());
    }

    #[test]
    fn free_vars_see_through_shadowing() {
        // (λ (x) ((λ (x) (x z)) x)) is free in z only.
        let mut b = CpsBuilder::new();
        let x = b.intern("x");
        let z = b.intern("z");
        let inner_body = b.call_app(AExp::Var(x), vec![AExp::Var(z)]);
        let inner = b.lam(vec![x], inner_body, LamSort::Proc);
        let outer_body = b.call_app(AExp::Lam(inner), vec![AExp::Var(x)]);
        let outer = b.lam(vec![x], outer_body, LamSort::Proc);
        let entry = b.call_halt(AExp::Lam(outer));
        let p = b.finish(entry);
        assert_eq!(p.free_vars(outer), &[z]);
        assert_eq!(p.free_vars(inner), &[z]);
    }

    #[test]
    fn fix_binders_are_not_free() {
        // (%fix ((f (λ (x k) (f x k)))) (%halt f))
        let mut b = CpsBuilder::new();
        let f = b.intern("f");
        let x = b.intern("x");
        let k = b.intern("k");
        let body = b.call_app(AExp::Var(f), vec![AExp::Var(x), AExp::Var(k)]);
        let lam = b.lam(vec![x, k], body, LamSort::Proc);
        let halt = b.call_halt(AExp::Var(f));
        let fix = b.call_fix(vec![(f, lam)], halt);
        let p = b.finish(fix);
        // f is free inside the lam (bound by the enclosing fix) …
        assert_eq!(p.free_vars(lam), &[f]);
        // … and `bound_vars` includes fix binders.
        assert!(p.bound_vars().contains(&f));
    }

    #[test]
    fn term_count_counts_atoms() {
        let (p, _, _) = sample();
        // 2 lams + 3 calls + atoms: (k x)→2, (%halt y)→1, entry app→2.
        assert_eq!(p.term_count(), 2 + 3 + 2 + 1 + 2);
    }

    #[test]
    fn primop_names_round_trip() {
        for op in [
            PrimOp::Add,
            PrimOp::Sub,
            PrimOp::Mul,
            PrimOp::Div,
            PrimOp::Rem,
            PrimOp::NumEq,
            PrimOp::Lt,
            PrimOp::Le,
            PrimOp::Gt,
            PrimOp::Ge,
            PrimOp::Eq,
            PrimOp::Cons,
            PrimOp::Car,
            PrimOp::Cdr,
            PrimOp::IsPair,
            PrimOp::IsNull,
            PrimOp::IsZero,
            PrimOp::IsNumber,
            PrimOp::IsBool,
            PrimOp::IsProcedure,
            PrimOp::IsSymbol,
            PrimOp::IsString,
            PrimOp::Not,
            PrimOp::StringAppend,
            PrimOp::ToString,
            PrimOp::Error,
            PrimOp::AtomNew,
            PrimOp::AtomRead,
            PrimOp::AtomSet,
            PrimOp::AtomCas,
        ] {
            assert_eq!(PrimOp::from_name(op.name()), Some(op), "{op:?}");
        }
        assert_eq!(PrimOp::from_name("no-such-prim"), None);
    }

    #[test]
    fn user_call_classification() {
        let (p, _, _) = sample();
        // entry: operator is a Proc lam → user call.
        assert!(p.is_user_call(p.entry()));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn finish_validates_entry() {
        let b = CpsBuilder::new();
        let _ = b.finish(CallId(0));
    }
}

//! Syntax for the k-CFA / m-CFA analyses: the CPS core language, a
//! mini-Scheme surface language, and the CPS converter between them.
//!
//! This crate is the front half of a reproduction of Might, Smaragdakis &
//! Van Horn, *Resolving and Exploiting the k-CFA Paradox* (PLDI 2010). The
//! paper's analyses operate on partitioned CPS (its Figure 3); the paper's
//! benchmarks are Scheme programs. Pipeline:
//!
//! ```text
//! source text ──sexpr──▶ Sexpr ──scheme──▶ Expr ──convert──▶ CpsProgram
//! ```
//!
//! # Examples
//!
//! ```
//! use cfa_syntax::convert::cps_convert;
//! use cfa_syntax::scheme::parse_program;
//!
//! let scm = parse_program("(define (id x) x) (id 42)")?;
//! let cps = cps_convert(&scm);
//! assert!(cps.term_count() > 0);
//! # Ok::<(), cfa_syntax::scheme::ParseError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod convert;
pub mod cps;
pub mod intern;
pub mod pretty;
pub mod scheme;
pub mod sexpr;

pub use convert::cps_convert;
pub use cps::{
    AExp, Call, CallId, CallKind, CpsBuilder, CpsProgram, Label, Lam, LamId, LamSort, Lit, PrimOp,
};
pub use intern::{Interner, Symbol};
pub use scheme::{parse_program, ParseError, ScmProgram};

/// Parses mini-Scheme source text straight into a CPS program.
///
/// Convenience wrapper over [`parse_program`] + [`cps_convert`].
///
/// # Errors
///
/// Returns a [`ParseError`] on malformed input.
///
/// # Examples
///
/// ```
/// let cps = cfa_syntax::compile("((lambda (x) x) 1)")?;
/// assert!(cps.lam_count() >= 1);
/// # Ok::<(), cfa_syntax::ParseError>(())
/// ```
pub fn compile(src: &str) -> Result<CpsProgram, ParseError> {
    Ok(cps_convert(&parse_program(src)?))
}

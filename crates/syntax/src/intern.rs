//! String interning.
//!
//! Every identifier in a program (variables, field names, class names,
//! method names) is interned into a [`Symbol`] — a small `Copy` integer id —
//! so that the analysis core can key maps and sets on machine words instead
//! of strings.
//!
//! # Examples
//!
//! ```
//! use cfa_syntax::intern::Interner;
//!
//! let mut interner = Interner::new();
//! let x = interner.intern("x");
//! let y = interner.intern("y");
//! assert_ne!(x, y);
//! assert_eq!(interner.intern("x"), x);
//! assert_eq!(interner.resolve(x), "x");
//! ```

use std::collections::HashMap;
use std::fmt;

/// An interned string.
///
/// Symbols are cheap to copy, compare, and hash. They are only meaningful
/// relative to the [`Interner`] that produced them.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Symbol(u32);

impl Symbol {
    /// Returns the raw index of this symbol in its interner.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs a symbol from a raw index.
    ///
    /// Intended for serialization round-trips and for the arena-style tables
    /// that the analyzers keep; passing an index that did not come from
    /// [`Symbol::index`] on the same interner yields a symbol that resolves
    /// to an unrelated string (or panics on [`Interner::resolve`]).
    pub fn from_index(index: usize) -> Self {
        Symbol(u32::try_from(index).expect("symbol index overflow"))
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Symbol({})", self.0)
    }
}

/// A deduplicating store of strings.
///
/// See the [module documentation](self) for an example.
#[derive(Default, Clone, Debug)]
pub struct Interner {
    names: Vec<String>,
    map: HashMap<String, Symbol>,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning the same [`Symbol`] for equal strings.
    pub fn intern(&mut self, name: &str) -> Symbol {
        if let Some(&sym) = self.map.get(name) {
            return sym;
        }
        let sym = Symbol(u32::try_from(self.names.len()).expect("too many symbols"));
        self.names.push(name.to_owned());
        self.map.insert(name.to_owned(), sym);
        sym
    }

    /// Returns the string for `sym`.
    ///
    /// # Panics
    ///
    /// Panics if `sym` was not produced by this interner.
    pub fn resolve(&self, sym: Symbol) -> &str {
        &self.names[sym.index()]
    }

    /// Returns the symbol for `name` if it has been interned.
    pub fn lookup(&self, name: &str) -> Option<Symbol> {
        self.map.get(name).copied()
    }

    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether no strings have been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over all `(symbol, string)` pairs in interning order.
    pub fn iter(&self) -> impl Iterator<Item = (Symbol, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, s)| (Symbol::from_index(i), s.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut i = Interner::new();
        let a = i.intern("foo");
        let b = i.intern("foo");
        assert_eq!(a, b);
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn distinct_strings_get_distinct_symbols() {
        let mut i = Interner::new();
        let a = i.intern("foo");
        let b = i.intern("bar");
        assert_ne!(a, b);
        assert_eq!(i.resolve(a), "foo");
        assert_eq!(i.resolve(b), "bar");
    }

    #[test]
    fn lookup_only_finds_interned() {
        let mut i = Interner::new();
        assert_eq!(i.lookup("x"), None);
        let x = i.intern("x");
        assert_eq!(i.lookup("x"), Some(x));
    }

    #[test]
    fn iter_yields_in_order() {
        let mut i = Interner::new();
        let a = i.intern("a");
        let b = i.intern("b");
        let pairs: Vec<_> = i.iter().collect();
        assert_eq!(pairs, vec![(a, "a"), (b, "b")]);
    }

    #[test]
    fn index_round_trip() {
        let mut i = Interner::new();
        let a = i.intern("roundtrip");
        assert_eq!(Symbol::from_index(a.index()), a);
    }
}

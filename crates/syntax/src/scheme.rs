//! Mini-Scheme: the direct-style surface language.
//!
//! The paper's empirical evaluation (§6) analyzes R5RS Scheme programs.
//! This module provides the subset needed to express those workloads:
//! `lambda`, application, `if`, `let`/`let*`/`letrec`, `begin`, `and`/`or`,
//! `cond`, `when`/`unless`, top-level `define`, `quote`, literals, and the
//! primitives of [`crate::cps::PrimOp`].
//!
//! Parsing desugars everything into the small [`Expr`] core; the CPS
//! converter ([`crate::convert`]) then lowers `Expr` into the CPS language.
//!
//! # Examples
//!
//! ```
//! use cfa_syntax::scheme::parse_program;
//!
//! let program = parse_program(
//!     "(define (double x) (+ x x))
//!      (double 21)",
//! )
//! .unwrap();
//! assert!(program.body.is_letrec());
//! ```

use crate::cps::{Lit, PrimOp};
use crate::intern::{Interner, Symbol};
use crate::sexpr::{self, Pos, Sexpr};
use std::fmt;

/// A direct-style expression after desugaring.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Expr {
    /// A literal constant.
    Lit(Lit),
    /// A variable reference.
    Var(Symbol),
    /// `(lambda (x …) body)`.
    Lambda {
        /// Formal parameters.
        params: Vec<Symbol>,
        /// Body (a `begin` is folded into nested `let`s during parsing).
        body: Box<Expr>,
    },
    /// Function application.
    App {
        /// Operator.
        func: Box<Expr>,
        /// Operands.
        args: Vec<Expr>,
    },
    /// `(if c t e)`.
    If {
        /// Condition.
        cond: Box<Expr>,
        /// Then-branch.
        then_branch: Box<Expr>,
        /// Else-branch (defaults to the void literal).
        else_branch: Box<Expr>,
    },
    /// `(let ((x e) …) body)` — parallel bindings.
    Let {
        /// Bindings.
        bindings: Vec<(Symbol, Expr)>,
        /// Body.
        body: Box<Expr>,
    },
    /// `(letrec ((f e) …) body)` — recursive bindings; every right-hand
    /// side must be a `lambda`.
    Letrec {
        /// Recursive bindings.
        bindings: Vec<(Symbol, Expr)>,
        /// Body.
        body: Box<Expr>,
    },
    /// A saturated primitive application.
    Prim {
        /// The primitive.
        op: PrimOp,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// `(spawn e)` — evaluate `e` in a new thread; the whole form
    /// evaluates to a thread handle in the parent.
    Spawn(Box<Expr>),
    /// `(join e)` — wait for the thread behind the handle `e` and
    /// evaluate to its result.
    Join(Box<Expr>),
}

impl Expr {
    /// Whether this is a `letrec` (used by tests and the workload suite).
    pub fn is_letrec(&self) -> bool {
        matches!(self, Expr::Letrec { .. })
    }

    /// Whether this is a `lambda`.
    pub fn is_lambda(&self) -> bool {
        matches!(self, Expr::Lambda { .. })
    }

    /// Number of AST nodes (a rough size measure for tests).
    pub fn size(&self) -> usize {
        match self {
            Expr::Lit(_) | Expr::Var(_) => 1,
            Expr::Lambda { body, .. } => 1 + body.size(),
            Expr::App { func, args } => {
                1 + func.size() + args.iter().map(Expr::size).sum::<usize>()
            }
            Expr::If {
                cond,
                then_branch,
                else_branch,
            } => 1 + cond.size() + then_branch.size() + else_branch.size(),
            Expr::Let { bindings, body } | Expr::Letrec { bindings, body } => {
                1 + bindings.iter().map(|(_, e)| e.size()).sum::<usize>() + body.size()
            }
            Expr::Prim { args, .. } => 1 + args.iter().map(Expr::size).sum::<usize>(),
            Expr::Spawn(body) | Expr::Join(body) => 1 + body.size(),
        }
    }
}

/// A parsed program: its interner plus a single desugared body expression.
///
/// Top-level `define` forms become one `letrec` wrapping the final
/// expression.
#[derive(Clone, Debug)]
pub struct ScmProgram {
    /// Symbols used by `body`.
    pub interner: Interner,
    /// The program body.
    pub body: Expr,
}

/// An error produced while parsing mini-Scheme.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseError {
    /// Source position, when available.
    pub pos: Option<Pos>,
    /// Description of the problem.
    pub message: String,
}

impl ParseError {
    fn at(pos: Pos, message: impl Into<String>) -> Self {
        ParseError {
            pos: Some(pos),
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.pos {
            Some(p) => write!(f, "parse error at {}: {}", p, self.message),
            None => write!(f, "parse error: {}", self.message),
        }
    }
}

impl std::error::Error for ParseError {}

impl From<sexpr::ReadError> for ParseError {
    fn from(e: sexpr::ReadError) -> Self {
        ParseError {
            pos: Some(e.pos),
            message: e.message,
        }
    }
}

/// Parses a whole program: zero or more `(define …)` forms followed by at
/// least one expression. Multiple trailing expressions are sequenced.
///
/// # Errors
///
/// Returns a [`ParseError`] for unreadable input, misplaced `define`,
/// malformed special forms, or primitive arity mismatches.
///
/// # Examples
///
/// ```
/// use cfa_syntax::scheme::parse_program;
///
/// let p = parse_program("((lambda (x) x) 42)").unwrap();
/// assert_eq!(p.body.size(), 4);
/// ```
pub fn parse_program(src: &str) -> Result<ScmProgram, ParseError> {
    let forms = sexpr::parse_all(src)?;
    if forms.is_empty() {
        return Err(ParseError {
            pos: None,
            message: "empty program".into(),
        });
    }
    let mut parser = Parser::new(Interner::new());

    let mut defines: Vec<(Symbol, Expr)> = Vec::new();
    let mut exprs: Vec<Expr> = Vec::new();
    for form in &forms {
        if is_define(form) {
            if !exprs.is_empty() {
                return Err(ParseError::at(
                    form.pos(),
                    "define must precede the program's expressions",
                ));
            }
            defines.push(parser.parse_define(form)?);
        } else {
            exprs.push(parser.parse_expr(form)?);
        }
    }
    if exprs.is_empty() {
        return Err(ParseError {
            pos: None,
            message: "program has no expression to evaluate".into(),
        });
    }
    let body = sequence(parser.ignored, exprs);
    let body = if defines.is_empty() {
        body
    } else {
        Expr::Letrec {
            bindings: defines,
            body: Box::new(body),
        }
    };
    Ok(ScmProgram {
        interner: parser.interner,
        body,
    })
}

/// Parses a single expression (no `define`s) into an [`Expr`] using the
/// given interner. Useful for tests and embedding.
///
/// # Errors
///
/// Returns a [`ParseError`] on malformed input.
pub fn parse_expr_with(interner: &mut Interner, src: &str) -> Result<Expr, ParseError> {
    let form = sexpr::parse_one(src)?;
    let mut parser = Parser::new(std::mem::take(interner));
    let result = parser.parse_expr(&form);
    *interner = parser.interner;
    result
}

fn is_define(form: &Sexpr) -> bool {
    form.as_list()
        .and_then(|items| items.first())
        .and_then(Sexpr::as_symbol)
        == Some("define")
}

/// `(begin e1 … en)` ≡ `(let ((_ e1)) (begin e2 … en))`, where `_` is the
/// reserved effect-only binder.
fn sequence(ignored: Symbol, mut exprs: Vec<Expr>) -> Expr {
    let last = exprs.pop().expect("sequence of at least one expression");
    exprs.into_iter().rev().fold(last, |acc, e| Expr::Let {
        bindings: vec![(ignored, e)],
        body: Box::new(acc),
    })
}

struct Parser {
    interner: Interner,
    /// The reserved binder for effect-only positions (`begin` desugaring).
    ignored: Symbol,
}

impl Parser {
    fn new(mut interner: Interner) -> Self {
        let ignored = interner.intern("_");
        Parser { interner, ignored }
    }

    fn intern(&mut self, s: &str) -> Symbol {
        self.interner.intern(s)
    }

    fn parse_define(&mut self, form: &Sexpr) -> Result<(Symbol, Expr), ParseError> {
        let items = form.as_list().expect("checked by is_define");
        match items {
            // (define (f x …) body…)
            [_, Sexpr::List(hpos, header), body @ ..] => {
                if header.is_empty() {
                    return Err(ParseError::at(*hpos, "empty define header"));
                }
                let name = header[0].as_symbol().ok_or_else(|| {
                    ParseError::at(header[0].pos(), "define header must start with a name")
                })?;
                let name = self.intern(name);
                let params = header[1..]
                    .iter()
                    .map(|p| {
                        p.as_symbol()
                            .map(|s| self.interner.intern(s))
                            .ok_or_else(|| ParseError::at(p.pos(), "parameter must be a symbol"))
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                let body = self.parse_body(form.pos(), body)?;
                Ok((
                    name,
                    Expr::Lambda {
                        params,
                        body: Box::new(body),
                    },
                ))
            }
            // (define x e)
            [_, Sexpr::Symbol(_, name), value] => {
                let name = self.intern(&name.clone());
                let value = self.parse_expr(value)?;
                if !value.is_lambda() {
                    return Err(ParseError::at(
                        form.pos(),
                        "top-level define must bind a lambda (letrec restriction)",
                    ));
                }
                Ok((name, value))
            }
            _ => Err(ParseError::at(form.pos(), "malformed define")),
        }
    }

    fn parse_body(&mut self, pos: Pos, body: &[Sexpr]) -> Result<Expr, ParseError> {
        if body.is_empty() {
            return Err(ParseError::at(pos, "empty body"));
        }
        let exprs = body
            .iter()
            .map(|e| self.parse_expr(e))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(sequence(self.ignored, exprs))
    }

    fn parse_expr(&mut self, form: &Sexpr) -> Result<Expr, ParseError> {
        match form {
            Sexpr::Int(_, n) => Ok(Expr::Lit(Lit::Int(*n))),
            Sexpr::Bool(_, b) => Ok(Expr::Lit(Lit::Bool(*b))),
            Sexpr::Str(_, s) => {
                let sym = self.intern(&s.clone());
                Ok(Expr::Lit(Lit::Str(sym)))
            }
            Sexpr::Symbol(pos, name) => match name.as_str() {
                "else" | "define" | "lambda" | "let" | "let*" | "letrec" | "if" | "cond"
                | "begin" | "and" | "or" | "quote" | "when" | "unless" | "spawn" | "join" => Err(
                    ParseError::at(*pos, format!("'{name}' used as an expression")),
                ),
                _ => {
                    let sym = self.intern(&name.clone());
                    Ok(Expr::Var(sym))
                }
            },
            Sexpr::List(pos, items) => {
                if items.is_empty() {
                    return Err(ParseError::at(*pos, "empty application"));
                }
                if let Some(head) = items[0].as_symbol() {
                    match head {
                        "lambda" => return self.parse_lambda(*pos, items),
                        "if" => return self.parse_if(*pos, items),
                        "let" => return self.parse_let(*pos, items, false),
                        "let*" => return self.parse_let(*pos, items, true),
                        "letrec" => return self.parse_letrec(*pos, items),
                        "begin" => return self.parse_body(*pos, &items[1..]),
                        "and" => return self.parse_and(&items[1..]),
                        "or" => return self.parse_or(&items[1..]),
                        "cond" => return self.parse_cond(&items[1..]),
                        "when" => return self.parse_when(*pos, items, true),
                        "unless" => return self.parse_when(*pos, items, false),
                        "quote" => return self.parse_quote(*pos, items),
                        "spawn" => return self.parse_spawn(*pos, items, true),
                        "join" => return self.parse_spawn(*pos, items, false),
                        "define" => {
                            return Err(ParseError::at(*pos, "define is only allowed at top level"))
                        }
                        "list" => {
                            let elems = items[1..]
                                .iter()
                                .map(|e| self.parse_expr(e))
                                .collect::<Result<Vec<_>, _>>()?;
                            return Ok(make_list(elems));
                        }
                        _ => {
                            if let Some(op) = PrimOp::from_name(head) {
                                // A primitive name in operator position is a
                                // primitive application (our subset does not
                                // allow shadowing primitive names).
                                return self.parse_prim(*pos, op, &items[1..]);
                            }
                        }
                    }
                }
                let func = self.parse_expr(&items[0])?;
                let args = items[1..]
                    .iter()
                    .map(|e| self.parse_expr(e))
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(Expr::App {
                    func: Box::new(func),
                    args,
                })
            }
        }
    }

    fn parse_prim(&mut self, pos: Pos, op: PrimOp, args: &[Sexpr]) -> Result<Expr, ParseError> {
        let args = args
            .iter()
            .map(|e| self.parse_expr(e))
            .collect::<Result<Vec<_>, _>>()?;
        if let Some(arity) = op.arity() {
            // `-` with one argument is negation: desugar to (- 0 x).
            if op == PrimOp::Sub && args.len() == 1 {
                let mut negated = vec![Expr::Lit(Lit::Int(0))];
                negated.extend(args);
                return Ok(Expr::Prim { op, args: negated });
            }
            if args.len() != arity {
                return Err(ParseError::at(
                    pos,
                    format!(
                        "primitive '{}' expects {} argument(s), got {}",
                        op,
                        arity,
                        args.len()
                    ),
                ));
            }
        } else if args.is_empty() {
            return Err(ParseError::at(
                pos,
                format!("primitive '{op}' needs arguments"),
            ));
        }
        Ok(Expr::Prim { op, args })
    }

    fn parse_lambda(&mut self, pos: Pos, items: &[Sexpr]) -> Result<Expr, ParseError> {
        if items.len() < 3 {
            return Err(ParseError::at(pos, "malformed lambda"));
        }
        let params = items[1]
            .as_list()
            .ok_or_else(|| ParseError::at(items[1].pos(), "lambda needs a parameter list"))?
            .iter()
            .map(|p| {
                p.as_symbol()
                    .map(|s| self.interner.intern(s))
                    .ok_or_else(|| ParseError::at(p.pos(), "parameter must be a symbol"))
            })
            .collect::<Result<Vec<_>, _>>()?;
        let body = self.parse_body(pos, &items[2..])?;
        Ok(Expr::Lambda {
            params,
            body: Box::new(body),
        })
    }

    fn parse_if(&mut self, pos: Pos, items: &[Sexpr]) -> Result<Expr, ParseError> {
        match items {
            [_, c, t] => Ok(Expr::If {
                cond: Box::new(self.parse_expr(c)?),
                then_branch: Box::new(self.parse_expr(t)?),
                else_branch: Box::new(Expr::Lit(Lit::Void)),
            }),
            [_, c, t, e] => Ok(Expr::If {
                cond: Box::new(self.parse_expr(c)?),
                then_branch: Box::new(self.parse_expr(t)?),
                else_branch: Box::new(self.parse_expr(e)?),
            }),
            _ => Err(ParseError::at(pos, "malformed if")),
        }
    }

    fn parse_bindings(&mut self, form: &Sexpr) -> Result<Vec<(Symbol, Expr)>, ParseError> {
        form.as_list()
            .ok_or_else(|| ParseError::at(form.pos(), "expected a binding list"))?
            .iter()
            .map(|b| {
                let pair = b
                    .as_list()
                    .ok_or_else(|| ParseError::at(b.pos(), "expected (name value)"))?;
                match pair {
                    [Sexpr::Symbol(_, name), value] => {
                        let name = self.intern(&name.clone());
                        Ok((name, self.parse_expr(value)?))
                    }
                    _ => Err(ParseError::at(b.pos(), "expected (name value)")),
                }
            })
            .collect()
    }

    fn parse_let(
        &mut self,
        pos: Pos,
        items: &[Sexpr],
        sequential: bool,
    ) -> Result<Expr, ParseError> {
        if items.len() < 3 {
            return Err(ParseError::at(pos, "malformed let"));
        }
        let bindings = self.parse_bindings(&items[1])?;
        let body = self.parse_body(pos, &items[2..])?;
        if sequential {
            // let* unfolds into nested lets.
            Ok(bindings
                .into_iter()
                .rev()
                .fold(body, |acc, (name, value)| Expr::Let {
                    bindings: vec![(name, value)],
                    body: Box::new(acc),
                }))
        } else {
            Ok(Expr::Let {
                bindings,
                body: Box::new(body),
            })
        }
    }

    fn parse_letrec(&mut self, pos: Pos, items: &[Sexpr]) -> Result<Expr, ParseError> {
        if items.len() < 3 {
            return Err(ParseError::at(pos, "malformed letrec"));
        }
        let bindings = self.parse_bindings(&items[1])?;
        for (_, value) in &bindings {
            if !value.is_lambda() {
                return Err(ParseError::at(
                    pos,
                    "letrec right-hand sides must be lambdas in this subset",
                ));
            }
        }
        let body = self.parse_body(pos, &items[2..])?;
        Ok(Expr::Letrec {
            bindings,
            body: Box::new(body),
        })
    }

    fn parse_and(&mut self, items: &[Sexpr]) -> Result<Expr, ParseError> {
        match items {
            [] => Ok(Expr::Lit(Lit::Bool(true))),
            [last] => self.parse_expr(last),
            [first, rest @ ..] => {
                let first = self.parse_expr(first)?;
                let rest = self.parse_and(rest)?;
                Ok(Expr::If {
                    cond: Box::new(first),
                    then_branch: Box::new(rest),
                    else_branch: Box::new(Expr::Lit(Lit::Bool(false))),
                })
            }
        }
    }

    fn parse_or(&mut self, items: &[Sexpr]) -> Result<Expr, ParseError> {
        match items {
            [] => Ok(Expr::Lit(Lit::Bool(false))),
            [last] => self.parse_expr(last),
            [first, rest @ ..] => {
                // (or a b…) ≡ (let ((t a)) (if t t (or b…))); `t` is a fresh
                // binder, but since our `or` arms are expressions without
                // shadowing concerns we reuse a reserved name per nesting.
                let first = self.parse_expr(first)?;
                let rest = self.parse_or(rest)?;
                let t = self.intern("%or-tmp");
                Ok(Expr::Let {
                    bindings: vec![(t, first)],
                    body: Box::new(Expr::If {
                        cond: Box::new(Expr::Var(t)),
                        then_branch: Box::new(Expr::Var(t)),
                        else_branch: Box::new(rest),
                    }),
                })
            }
        }
    }

    fn parse_cond(&mut self, clauses: &[Sexpr]) -> Result<Expr, ParseError> {
        match clauses {
            [] => Ok(Expr::Lit(Lit::Void)),
            [clause, rest @ ..] => {
                let items = clause
                    .as_list()
                    .ok_or_else(|| ParseError::at(clause.pos(), "cond clause must be a list"))?;
                if items.is_empty() {
                    return Err(ParseError::at(clause.pos(), "empty cond clause"));
                }
                if items[0].as_symbol() == Some("else") {
                    if !rest.is_empty() {
                        return Err(ParseError::at(clause.pos(), "else must be the last clause"));
                    }
                    return self.parse_body(clause.pos(), &items[1..]);
                }
                let test = self.parse_expr(&items[0])?;
                let consequent = if items.len() > 1 {
                    self.parse_body(clause.pos(), &items[1..])?
                } else {
                    test.clone()
                };
                let alternative = self.parse_cond(rest)?;
                Ok(Expr::If {
                    cond: Box::new(test),
                    then_branch: Box::new(consequent),
                    else_branch: Box::new(alternative),
                })
            }
        }
    }

    fn parse_when(
        &mut self,
        pos: Pos,
        items: &[Sexpr],
        positive: bool,
    ) -> Result<Expr, ParseError> {
        if items.len() < 3 {
            return Err(ParseError::at(pos, "malformed when/unless"));
        }
        let cond = self.parse_expr(&items[1])?;
        let body = self.parse_body(pos, &items[2..])?;
        let void = Expr::Lit(Lit::Void);
        let (then_branch, else_branch) = if positive { (body, void) } else { (void, body) };
        Ok(Expr::If {
            cond: Box::new(cond),
            then_branch: Box::new(then_branch),
            else_branch: Box::new(else_branch),
        })
    }

    /// `(spawn body…)` (the body is an implicit `begin`) or `(join e)`.
    fn parse_spawn(&mut self, pos: Pos, items: &[Sexpr], spawn: bool) -> Result<Expr, ParseError> {
        if spawn {
            let body = self.parse_body(pos, &items[1..])?;
            Ok(Expr::Spawn(Box::new(body)))
        } else {
            match items {
                [_, handle] => Ok(Expr::Join(Box::new(self.parse_expr(handle)?))),
                _ => Err(ParseError::at(pos, "join expects exactly one handle")),
            }
        }
    }

    fn parse_quote(&mut self, pos: Pos, items: &[Sexpr]) -> Result<Expr, ParseError> {
        if items.len() != 2 {
            return Err(ParseError::at(pos, "malformed quote"));
        }
        self.quote_datum(&items[1])
    }

    fn quote_datum(&mut self, datum: &Sexpr) -> Result<Expr, ParseError> {
        Ok(match datum {
            Sexpr::Int(_, n) => Expr::Lit(Lit::Int(*n)),
            Sexpr::Bool(_, b) => Expr::Lit(Lit::Bool(*b)),
            Sexpr::Str(_, s) => {
                let sym = self.intern(&s.clone());
                Expr::Lit(Lit::Str(sym))
            }
            Sexpr::Symbol(_, name) => {
                let sym = self.intern(&name.clone());
                Expr::Lit(Lit::Sym(sym))
            }
            Sexpr::List(_, items) => {
                let elems = items
                    .iter()
                    .map(|d| self.quote_datum(d))
                    .collect::<Result<Vec<_>, _>>()?;
                make_list(elems)
            }
        })
    }
}

/// Builds `(cons e₁ (cons … '()))`.
fn make_list(elems: Vec<Expr>) -> Expr {
    elems
        .into_iter()
        .rev()
        .fold(Expr::Lit(Lit::Nil), |acc, e| Expr::Prim {
            op: PrimOp::Cons,
            args: vec![e, acc],
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> Expr {
        parse_program(src).unwrap().body
    }

    #[test]
    fn parses_application() {
        let e = parse("((lambda (x) x) 1)");
        match e {
            Expr::App { func, args } => {
                assert!(func.is_lambda());
                assert_eq!(args.len(), 1);
            }
            other => panic!("expected application, got {other:?}"),
        }
    }

    #[test]
    fn defines_become_letrec() {
        let e = parse("(define (f x) x) (define (g y) (f y)) (g 1)");
        match e {
            Expr::Letrec { bindings, .. } => assert_eq!(bindings.len(), 2),
            other => panic!("expected letrec, got {other:?}"),
        }
    }

    #[test]
    fn begin_desugars_to_lets() {
        let e = parse("(begin 1 2 3)");
        // (let ((_ 1)) (let ((_ 2)) 3))
        match e {
            Expr::Let { bindings, body } => {
                assert_eq!(bindings.len(), 1);
                assert!(matches!(*body, Expr::Let { .. }));
            }
            other => panic!("expected let, got {other:?}"),
        }
    }

    #[test]
    fn let_star_nests() {
        let e = parse("(let* ((a 1) (b a)) b)");
        match e {
            Expr::Let { bindings, body } => {
                assert_eq!(bindings.len(), 1);
                assert!(matches!(*body, Expr::Let { .. }));
            }
            other => panic!("expected nested lets, got {other:?}"),
        }
    }

    #[test]
    fn and_or_desugar_to_if() {
        assert!(matches!(parse("(and 1 2)"), Expr::If { .. }));
        assert!(matches!(parse("(or 1 2)"), Expr::Let { .. }));
        assert_eq!(parse("(and)"), Expr::Lit(Lit::Bool(true)));
        assert_eq!(parse("(or)"), Expr::Lit(Lit::Bool(false)));
    }

    #[test]
    fn cond_desugars_to_if_chain() {
        let e = parse("(cond ((zero? 0) 1) ((zero? 1) 2) (else 3))");
        match e {
            Expr::If { else_branch, .. } => assert!(matches!(*else_branch, Expr::If { .. })),
            other => panic!("expected if, got {other:?}"),
        }
    }

    #[test]
    fn quote_builds_data() {
        assert_eq!(parse("'()"), Expr::Lit(Lit::Nil));
        assert!(matches!(parse("'foo"), Expr::Lit(Lit::Sym(_))));
        // '(1 2) is (cons 1 (cons 2 '()))
        match parse("'(1 2)") {
            Expr::Prim {
                op: PrimOp::Cons,
                args,
            } => {
                assert_eq!(args[0], Expr::Lit(Lit::Int(1)));
            }
            other => panic!("expected cons, got {other:?}"),
        }
    }

    #[test]
    fn list_desugars_to_cons() {
        assert!(matches!(
            parse("(list 1 2 3)"),
            Expr::Prim {
                op: PrimOp::Cons,
                ..
            }
        ));
        assert_eq!(parse("(list)"), Expr::Lit(Lit::Nil));
    }

    #[test]
    fn unary_minus_negates() {
        match parse("(- 5)") {
            Expr::Prim {
                op: PrimOp::Sub,
                args,
            } => {
                assert_eq!(args[0], Expr::Lit(Lit::Int(0)));
                assert_eq!(args[1], Expr::Lit(Lit::Int(5)));
            }
            other => panic!("expected subtraction, got {other:?}"),
        }
    }

    #[test]
    fn arity_is_checked() {
        assert!(parse_program("(car 1 2)").is_err());
        assert!(parse_program("(cons 1)").is_err());
    }

    #[test]
    fn letrec_requires_lambdas() {
        assert!(parse_program("(letrec ((x 1)) x)").is_err());
        assert!(parse_program("(letrec ((f (lambda (x) x))) (f 1))").is_ok());
    }

    #[test]
    fn misplaced_define_rejected() {
        assert!(parse_program("((define (f) 1))").is_err());
        assert!(parse_program("(f 1) (define (f x) x)").is_err());
    }

    #[test]
    fn keywords_cannot_be_variables() {
        assert!(parse_program("lambda").is_err());
        assert!(parse_program("(f else)").is_err());
    }

    #[test]
    fn when_unless_desugar() {
        assert!(matches!(parse("(when 1 2)"), Expr::If { .. }));
        assert!(matches!(parse("(unless 1 2)"), Expr::If { .. }));
    }

    #[test]
    fn spawn_and_join_parse() {
        match parse("(spawn 1 2)") {
            Expr::Spawn(body) => assert!(matches!(*body, Expr::Let { .. })),
            other => panic!("expected spawn, got {other:?}"),
        }
        assert!(matches!(parse("(join x)"), Expr::Join(_)));
        assert!(parse_program("(spawn)").is_err());
        assert!(parse_program("(join a b)").is_err());
        assert!(parse_program("(f spawn)").is_err());
    }

    #[test]
    fn atomic_ref_prims_parse_with_arity() {
        assert!(matches!(
            parse("(atom 0)"),
            Expr::Prim {
                op: PrimOp::AtomNew,
                ..
            }
        ));
        assert!(matches!(
            parse("(cas! x 0 1)"),
            Expr::Prim {
                op: PrimOp::AtomCas,
                ..
            }
        ));
        assert!(parse_program("(deref)").is_err());
        assert!(parse_program("(reset! x)").is_err());
        assert!(parse_program("(cas! x 1)").is_err());
    }

    #[test]
    fn if_without_else_gets_void() {
        match parse("(if 1 2)") {
            Expr::If { else_branch, .. } => assert_eq!(*else_branch, Expr::Lit(Lit::Void)),
            other => panic!("expected if, got {other:?}"),
        }
    }
}

//! S-expression reader.
//!
//! A small, standalone reader producing [`Sexpr`] trees with source
//! positions. The mini-Scheme parser in [`crate::scheme`] consumes these.
//!
//! Supported syntax: lists `( … )` and `[ … ]`, integers, `#t`/`#f`,
//! string literals with escapes, symbols, quote (`'x` reads as
//! `(quote x)`), and `;` line comments.
//!
//! # Examples
//!
//! ```
//! use cfa_syntax::sexpr::{parse_all, Sexpr};
//!
//! let forms = parse_all("(+ 1 2) ; a comment\n(f x)").unwrap();
//! assert_eq!(forms.len(), 2);
//! assert!(matches!(forms[0], Sexpr::List(_, _)));
//! ```

use std::fmt;

/// A line/column source position (1-based).
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub struct Pos {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number.
    pub col: u32,
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// A parsed S-expression.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Sexpr {
    /// A symbol such as `lambda` or `x`.
    Symbol(Pos, String),
    /// An integer literal.
    Int(Pos, i64),
    /// A boolean literal (`#t` / `#f`).
    Bool(Pos, bool),
    /// A string literal.
    Str(Pos, String),
    /// A parenthesized list.
    List(Pos, Vec<Sexpr>),
}

impl Sexpr {
    /// The source position where this expression starts.
    pub fn pos(&self) -> Pos {
        match self {
            Sexpr::Symbol(p, _)
            | Sexpr::Int(p, _)
            | Sexpr::Bool(p, _)
            | Sexpr::Str(p, _)
            | Sexpr::List(p, _) => *p,
        }
    }

    /// Returns the symbol name if this is a symbol.
    pub fn as_symbol(&self) -> Option<&str> {
        match self {
            Sexpr::Symbol(_, s) => Some(s),
            _ => None,
        }
    }

    /// Returns the elements if this is a list.
    pub fn as_list(&self) -> Option<&[Sexpr]> {
        match self {
            Sexpr::List(_, items) => Some(items),
            _ => None,
        }
    }
}

impl fmt::Display for Sexpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Sexpr::Symbol(_, s) => write!(f, "{s}"),
            Sexpr::Int(_, n) => write!(f, "{n}"),
            Sexpr::Bool(_, b) => write!(f, "#{}", if *b { "t" } else { "f" }),
            Sexpr::Str(_, s) => write!(f, "{s:?}"),
            Sexpr::List(_, items) => {
                write!(f, "(")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, ")")
            }
        }
    }
}

/// An error produced while reading S-expressions.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ReadError {
    /// Where the error occurred.
    pub pos: Pos,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ReadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "read error at {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for ReadError {}

struct Reader<'a> {
    src: &'a [u8],
    at: usize,
    line: u32,
    col: u32,
}

impl<'a> Reader<'a> {
    fn new(src: &'a str) -> Self {
        Reader {
            src: src.as_bytes(),
            at: 0,
            line: 1,
            col: 1,
        }
    }

    fn pos(&self) -> Pos {
        Pos {
            line: self.line,
            col: self.col,
        }
    }

    fn error(&self, message: impl Into<String>) -> ReadError {
        ReadError {
            pos: self.pos(),
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.at).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.at += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                Some(c) if c.is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b';') => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                _ => break,
            }
        }
    }

    fn read(&mut self) -> Result<Sexpr, ReadError> {
        self.skip_trivia();
        let pos = self.pos();
        match self.peek() {
            None => Err(self.error("unexpected end of input")),
            Some(b'(') | Some(b'[') => {
                let open = self.bump().expect("peeked");
                let close = if open == b'(' { b')' } else { b']' };
                let mut items = Vec::new();
                loop {
                    self.skip_trivia();
                    match self.peek() {
                        None => return Err(self.error(format!("unclosed list starting at {pos}"))),
                        Some(c) if c == close => {
                            self.bump();
                            return Ok(Sexpr::List(pos, items));
                        }
                        Some(b')') | Some(b']') => {
                            return Err(self.error("mismatched closing delimiter"))
                        }
                        _ => items.push(self.read()?),
                    }
                }
            }
            Some(b')') | Some(b']') => Err(self.error("unexpected closing delimiter")),
            Some(b'\'') => {
                self.bump();
                let quoted = self.read()?;
                Ok(Sexpr::List(
                    pos,
                    vec![Sexpr::Symbol(pos, "quote".to_owned()), quoted],
                ))
            }
            Some(b'"') => self.read_string(pos),
            Some(b'#') => self.read_hash(pos),
            _ => self.read_atom(pos),
        }
    }

    fn read_string(&mut self, pos: Pos) -> Result<Sexpr, ReadError> {
        self.bump(); // opening quote
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.error("unterminated string literal")),
                Some(b'"') => return Ok(Sexpr::Str(pos, out)),
                Some(b'\\') => match self.bump() {
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'"') => out.push('"'),
                    Some(other) => {
                        return Err(
                            self.error(format!("unknown string escape '\\{}'", other as char))
                        )
                    }
                    None => return Err(self.error("unterminated string escape")),
                },
                Some(c) => out.push(c as char),
            }
        }
    }

    fn read_hash(&mut self, pos: Pos) -> Result<Sexpr, ReadError> {
        self.bump(); // '#'
        match self.bump() {
            Some(b't') => Ok(Sexpr::Bool(pos, true)),
            Some(b'f') => Ok(Sexpr::Bool(pos, false)),
            Some(other) => Err(self.error(format!("unknown '#' syntax '#{}'", other as char))),
            None => Err(self.error("unexpected end of input after '#'")),
        }
    }

    fn read_atom(&mut self, pos: Pos) -> Result<Sexpr, ReadError> {
        let mut text = String::new();
        while let Some(c) = self.peek() {
            if c.is_ascii_whitespace() || matches!(c, b'(' | b')' | b'[' | b']' | b';' | b'"') {
                break;
            }
            text.push(c as char);
            self.bump();
        }
        if text.is_empty() {
            return Err(self.error("expected an atom"));
        }
        // A token is an integer iff it parses as one. `-` alone or `1+` are symbols.
        if text
            .chars()
            .next()
            .map(|c| c.is_ascii_digit())
            .unwrap_or(false)
            || (text.len() > 1
                && (text.starts_with('-') || text.starts_with('+'))
                && text[1..].chars().all(|c| c.is_ascii_digit()))
        {
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Sexpr::Int(pos, n));
            }
        }
        Ok(Sexpr::Symbol(pos, text))
    }
}

/// Reads a single S-expression from `src`, requiring that nothing but
/// trivia follows it.
///
/// # Errors
///
/// Returns a [`ReadError`] on malformed input or trailing junk.
pub fn parse_one(src: &str) -> Result<Sexpr, ReadError> {
    let mut r = Reader::new(src);
    let e = r.read()?;
    r.skip_trivia();
    if r.peek().is_some() {
        return Err(r.error("trailing input after expression"));
    }
    Ok(e)
}

/// Reads all S-expressions from `src`.
///
/// # Errors
///
/// Returns a [`ReadError`] on malformed input.
pub fn parse_all(src: &str) -> Result<Vec<Sexpr>, ReadError> {
    let mut r = Reader::new(src);
    let mut out = Vec::new();
    loop {
        r.skip_trivia();
        if r.peek().is_none() {
            return Ok(out);
        }
        out.push(r.read()?);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_atoms() {
        assert_eq!(
            parse_one("42").unwrap(),
            Sexpr::Int(Pos { line: 1, col: 1 }, 42)
        );
        assert_eq!(
            parse_one("-17").unwrap(),
            Sexpr::Int(Pos { line: 1, col: 1 }, -17)
        );
        assert!(matches!(parse_one("#t").unwrap(), Sexpr::Bool(_, true)));
        assert!(matches!(parse_one("#f").unwrap(), Sexpr::Bool(_, false)));
        assert!(matches!(parse_one("foo-bar?").unwrap(), Sexpr::Symbol(_, s) if s == "foo-bar?"));
        // `-` and `+` alone are symbols, not numbers.
        assert!(matches!(parse_one("-").unwrap(), Sexpr::Symbol(_, s) if s == "-"));
        assert!(matches!(parse_one("+").unwrap(), Sexpr::Symbol(_, s) if s == "+"));
    }

    #[test]
    fn reads_strings_with_escapes() {
        let e = parse_one(r#""a\nb\"c""#).unwrap();
        assert!(matches!(e, Sexpr::Str(_, s) if s == "a\nb\"c"));
    }

    #[test]
    fn reads_nested_lists() {
        let e = parse_one("(a (b c) [d])").unwrap();
        let items = e.as_list().unwrap();
        assert_eq!(items.len(), 3);
        assert_eq!(items[0].as_symbol(), Some("a"));
        assert_eq!(items[1].as_list().unwrap().len(), 2);
        assert_eq!(items[2].as_list().unwrap().len(), 1);
    }

    #[test]
    fn quote_expands() {
        let e = parse_one("'x").unwrap();
        let items = e.as_list().unwrap();
        assert_eq!(items[0].as_symbol(), Some("quote"));
        assert_eq!(items[1].as_symbol(), Some("x"));
    }

    #[test]
    fn comments_are_skipped() {
        let forms = parse_all("; hello\n(f) ; mid\n(g)").unwrap();
        assert_eq!(forms.len(), 2);
    }

    #[test]
    fn positions_are_tracked() {
        let forms = parse_all("(a)\n  (b)").unwrap();
        assert_eq!(forms[1].pos(), Pos { line: 2, col: 3 });
    }

    #[test]
    fn errors_on_unclosed_list() {
        assert!(parse_one("(a (b)").is_err());
    }

    #[test]
    fn errors_on_stray_close() {
        assert!(parse_one(")").is_err());
        assert!(parse_one("(a])").is_err());
    }

    #[test]
    fn errors_on_trailing_junk() {
        assert!(parse_one("(a) b").is_err());
    }

    #[test]
    fn display_round_trips() {
        let src = "(lambda (x) (+ x 1))";
        let e = parse_one(src).unwrap();
        let printed = e.to_string();
        assert_eq!(parse_one(&printed).unwrap().to_string(), printed);
    }
}

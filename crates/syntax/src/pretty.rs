//! Pretty-printing for CPS programs.
//!
//! Renders [`CpsProgram`] terms back to a readable S-expression surface,
//! with optional labels. Used by the CLI, examples, and golden tests.
//!
//! # Examples
//!
//! ```
//! use cfa_syntax::convert::cps_convert;
//! use cfa_syntax::scheme::parse_program;
//! use cfa_syntax::pretty::pretty_program;
//!
//! let cps = cps_convert(&parse_program("((lambda (x) x) 42)").unwrap());
//! let text = pretty_program(&cps);
//! assert!(text.contains("λ"));
//! assert!(text.contains("%halt"));
//! ```

use crate::cps::{AExp, CallId, CallKind, CpsProgram, LamId, LamSort, Lit};
use std::fmt::Write as _;

/// Options controlling pretty-printing.
#[derive(Copy, Clone, Debug)]
pub struct PrettyOptions {
    /// Attach `@ℓn` labels to λ-terms and call sites.
    pub show_labels: bool,
    /// Mark continuation λ-terms with `λκ` instead of `λ`.
    pub mark_conts: bool,
    /// Spaces per indentation level.
    pub indent: usize,
}

impl Default for PrettyOptions {
    fn default() -> Self {
        PrettyOptions {
            show_labels: false,
            mark_conts: true,
            indent: 2,
        }
    }
}

/// Pretty-prints a whole program starting from its entry call.
pub fn pretty_program(p: &CpsProgram) -> String {
    pretty_program_with(p, PrettyOptions::default())
}

/// Pretty-prints a whole program with explicit options.
pub fn pretty_program_with(p: &CpsProgram, opts: PrettyOptions) -> String {
    let mut out = String::new();
    write_call(p, p.entry(), 0, opts, &mut out);
    out.push('\n');
    out
}

/// Pretty-prints a single λ-term.
pub fn pretty_lam(p: &CpsProgram, lam: LamId) -> String {
    let mut out = String::new();
    write_lam(p, lam, 0, PrettyOptions::default(), &mut out);
    out
}

/// Pretty-prints a single call site.
pub fn pretty_call(p: &CpsProgram, call: CallId) -> String {
    let mut out = String::new();
    write_call(p, call, 0, PrettyOptions::default(), &mut out);
    out
}

/// Renders an atomic expression on one line.
pub fn pretty_aexp(p: &CpsProgram, e: &AExp) -> String {
    match e {
        AExp::Var(v) => p.name(*v).to_owned(),
        AExp::Lit(l) => pretty_lit(p, *l),
        AExp::Lam(l) => pretty_lam(p, *l),
    }
}

fn pretty_lit(p: &CpsProgram, l: Lit) -> String {
    match l {
        Lit::Int(n) => n.to_string(),
        Lit::Bool(true) => "#t".to_owned(),
        Lit::Bool(false) => "#f".to_owned(),
        Lit::Nil => "'()".to_owned(),
        Lit::Str(s) => format!("{:?}", p.name(s)),
        Lit::Sym(s) => format!("'{}", p.name(s)),
        Lit::Void => "#void".to_owned(),
    }
}

fn pad(out: &mut String, depth: usize, opts: PrettyOptions) {
    for _ in 0..depth * opts.indent {
        out.push(' ');
    }
}

fn write_aexp(p: &CpsProgram, e: &AExp, depth: usize, opts: PrettyOptions, out: &mut String) {
    match e {
        AExp::Var(v) => out.push_str(p.name(*v)),
        AExp::Lit(l) => out.push_str(&pretty_lit(p, *l)),
        AExp::Lam(l) => write_lam(p, *l, depth, opts, out),
    }
}

fn write_lam(p: &CpsProgram, id: LamId, depth: usize, opts: PrettyOptions, out: &mut String) {
    let lam = p.lam(id);
    let head = if opts.mark_conts && lam.sort == LamSort::Cont {
        "λκ"
    } else {
        "λ"
    };
    out.push('(');
    out.push_str(head);
    if opts.show_labels {
        let _ = write!(out, "@{:?}", lam.label);
    }
    out.push_str(" (");
    for (i, param) in lam.params.iter().enumerate() {
        if i > 0 {
            out.push(' ');
        }
        out.push_str(p.name(*param));
    }
    out.push_str(")\n");
    pad(out, depth + 1, opts);
    write_call(p, lam.body, depth + 1, opts, out);
    out.push(')');
}

fn write_call(p: &CpsProgram, id: CallId, depth: usize, opts: PrettyOptions, out: &mut String) {
    let call = p.call(id);
    match &call.kind {
        CallKind::App { func, args } => {
            out.push('(');
            if opts.show_labels {
                let _ = write!(out, "@{:?} ", call.label);
            }
            write_aexp(p, func, depth, opts, out);
            for a in args {
                out.push(' ');
                write_aexp(p, a, depth, opts, out);
            }
            out.push(')');
        }
        CallKind::If {
            cond,
            then_branch,
            else_branch,
        } => {
            out.push_str("(%if ");
            write_aexp(p, cond, depth, opts, out);
            out.push('\n');
            pad(out, depth + 1, opts);
            write_call(p, *then_branch, depth + 1, opts, out);
            out.push('\n');
            pad(out, depth + 1, opts);
            write_call(p, *else_branch, depth + 1, opts, out);
            out.push(')');
        }
        CallKind::PrimCall { op, args, cont } => {
            out.push_str("(%prim ");
            out.push_str(op.name());
            for a in args {
                out.push(' ');
                write_aexp(p, a, depth, opts, out);
            }
            out.push(' ');
            write_aexp(p, cont, depth, opts, out);
            out.push(')');
        }
        CallKind::Fix { bindings, body } => {
            out.push_str("(%fix (");
            for (i, (name, lam)) in bindings.iter().enumerate() {
                if i > 0 {
                    out.push('\n');
                    pad(out, depth + 3, opts);
                }
                out.push('(');
                out.push_str(p.name(*name));
                out.push(' ');
                write_lam(p, *lam, depth + 3, opts, out);
                out.push(')');
            }
            out.push_str(")\n");
            pad(out, depth + 1, opts);
            write_call(p, *body, depth + 1, opts, out);
            out.push(')');
        }
        CallKind::Spawn { thunk, cont } => {
            out.push_str("(%spawn ");
            write_aexp(p, thunk, depth, opts, out);
            out.push(' ');
            write_aexp(p, cont, depth, opts, out);
            out.push(')');
        }
        CallKind::Join { target, cont } => {
            out.push_str("(%join ");
            write_aexp(p, target, depth, opts, out);
            out.push(' ');
            write_aexp(p, cont, depth, opts, out);
            out.push(')');
        }
        CallKind::Halt { value } => {
            out.push_str("(%halt ");
            write_aexp(p, value, depth, opts, out);
            out.push(')');
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convert::cps_convert;
    use crate::scheme::parse_program;

    fn pp(src: &str) -> String {
        pretty_program(&cps_convert(&parse_program(src).unwrap()))
    }

    #[test]
    fn prints_halt() {
        assert!(pp("42").contains("(%halt 42)"));
    }

    #[test]
    fn prints_conts_distinctly() {
        let text = pp("(let ((x 1)) x)");
        assert!(text.contains("λκ"), "{text}");
    }

    #[test]
    fn prints_if_and_prim() {
        let text = pp("(if (zero? 1) 2 3)");
        assert!(text.contains("(%prim zero?"), "{text}");
        assert!(text.contains("(%if"), "{text}");
    }

    #[test]
    fn prints_fix() {
        let text = pp("(define (f x) (f x)) (f 1)");
        assert!(text.contains("(%fix"), "{text}");
    }

    #[test]
    fn prints_spawn_and_join() {
        let text = pp("(let ((t (spawn 1))) (join t))");
        assert!(text.contains("(%spawn"), "{text}");
        assert!(text.contains("(%join"), "{text}");
    }

    #[test]
    fn labels_shown_when_requested() {
        let p = cps_convert(&parse_program("((lambda (x) x) 1)").unwrap());
        let text = pretty_program_with(
            &p,
            PrettyOptions {
                show_labels: true,
                ..PrettyOptions::default()
            },
        );
        assert!(text.contains("@ℓ"), "{text}");
    }
}

//! CPS conversion.
//!
//! Lowers the direct-style mini-Scheme [`Expr`] into
//! the partitioned CPS language of [`crate::cps`]. The conversion:
//!
//! * alpha-renames every binder to a unique symbol (k-CFA addresses are
//!   `(variable, context)` pairs, so distinct binders must be distinct
//!   symbols);
//! * marks user `lambda`s as [`LamSort::Proc`] and every administrative
//!   λ-term it introduces as [`LamSort::Cont`] — the ΔCFA partitioning that
//!   m-CFA's environment allocator consults (paper §5.3);
//! * converts `let` bindings with *continuation* λ-terms (not procedure
//!   calls), so a `let` does not push a stack frame under m-CFA, mirroring
//!   how Shivers's front end treated `let`;
//! * introduces join-point continuations for `if`, so no λ-term is
//!   duplicated into both branches.
//!
//! # Examples
//!
//! ```
//! use cfa_syntax::convert::cps_convert;
//! use cfa_syntax::scheme::parse_program;
//!
//! let scm = parse_program("((lambda (x) x) 42)").unwrap();
//! let cps = cps_convert(&scm);
//! assert!(cps.lam_count() >= 2); // the user lambda + a halt continuation
//! ```

use crate::cps::{AExp, CallId, CpsBuilder, CpsProgram, LamSort};
use crate::intern::Symbol;
use crate::scheme::{Expr, ScmProgram};
use std::collections::HashMap;

/// Converts a parsed mini-Scheme program into CPS.
///
/// The resulting program terminates with `%halt` on the program's value.
pub fn cps_convert(program: &ScmProgram) -> CpsProgram {
    let mut converter = Converter {
        builder: CpsBuilder::with_interner(program.interner.clone()),
        fresh_counter: 0,
    };
    let scope = Scope::default();
    let entry = converter.convert(
        &program.body,
        &scope,
        MetaK::ctx(|c, atom| c.builder.call_halt(atom)),
    );
    converter.builder.finish(entry)
}

/// A compile-time environment renaming source binders to unique symbols.
#[derive(Default, Clone)]
struct Scope {
    renames: HashMap<Symbol, Symbol>,
}

impl Scope {
    fn lookup(&self, v: Symbol) -> Symbol {
        // Unbound variables keep their name; the analyzers treat reads of
        // unbound addresses as bottom, which is the conventional behavior
        // for open programs.
        self.renames.get(&v).copied().unwrap_or(v)
    }

    fn bind(&self, from: Symbol, to: Symbol) -> Scope {
        let mut s = self.clone();
        s.renames.insert(from, to);
        s
    }
}

/// A deferred context awaiting the converted value's atom.
type CtxFn<'a> = Box<dyn FnOnce(&mut Converter, AExp) -> CallId + 'a>;

/// A deferred context awaiting a vector of converted atoms.
type AtomsFn<'a> = Box<dyn FnOnce(&mut Converter, Vec<AExp>) -> CallId + 'a>;

/// What to do with the value of the expression being converted.
enum MetaK<'a> {
    /// Tail position: pass the value to this continuation atom.
    Atom(AExp),
    /// Non-tail: splice the value atom into the surrounding context.
    Ctx(CtxFn<'a>),
}

impl<'a> MetaK<'a> {
    fn ctx(f: impl FnOnce(&mut Converter, AExp) -> CallId + 'a) -> Self {
        MetaK::Ctx(Box::new(f))
    }
}

struct Converter {
    builder: CpsBuilder,
    fresh_counter: u32,
}

impl Converter {
    /// A fresh symbol derived from `base`, e.g. `x` ↦ `x.7`.
    fn fresh_from(&mut self, base: Symbol) -> Symbol {
        let name = format!(
            "{}.{}",
            self.builder.interner().resolve(base),
            self.fresh_counter
        );
        self.fresh_counter += 1;
        self.builder.intern(&name)
    }

    /// A fresh symbol with the given prefix (administrative temporaries).
    fn fresh(&mut self, prefix: &str) -> Symbol {
        let name = format!("%{}{}", prefix, self.fresh_counter);
        self.fresh_counter += 1;
        self.builder.intern(&name)
    }

    /// Reifies a meta-continuation into a continuation atom.
    fn reify(&mut self, k: MetaK<'_>) -> AExp {
        match k {
            MetaK::Atom(a) => a,
            MetaK::Ctx(cb) => {
                let rv = self.fresh("rv");
                let body = cb(self, AExp::Var(rv));
                let lam = self.builder.lam(vec![rv], body, LamSort::Cont);
                AExp::Lam(lam)
            }
        }
    }

    /// Applies a meta-continuation to a value atom.
    fn apply_k(&mut self, k: MetaK<'_>, atom: AExp) -> CallId {
        match k {
            MetaK::Atom(a) => self.builder.call_app(a, vec![atom]),
            MetaK::Ctx(cb) => cb(self, atom),
        }
    }

    fn convert(&mut self, e: &Expr, scope: &Scope, k: MetaK<'_>) -> CallId {
        match e {
            Expr::Lit(l) => {
                let atom = AExp::Lit(*l);
                self.apply_k(k, atom)
            }
            Expr::Var(v) => {
                let atom = AExp::Var(scope.lookup(*v));
                self.apply_k(k, atom)
            }
            Expr::Lambda { .. } => {
                let lam = self.convert_lambda(e, scope);
                self.apply_k(k, AExp::Lam(lam))
            }
            Expr::App { func, args } => self.atomize(func, scope, |c, fa| {
                c.atomize_all(args, scope, |c, mut arg_atoms| {
                    let kont = c.reify(k);
                    arg_atoms.push(kont);
                    c.builder.call_app(fa, arg_atoms)
                })
            }),
            Expr::If {
                cond,
                then_branch,
                else_branch,
            } => {
                self.atomize(cond, scope, |c, cond_atom| match k {
                    MetaK::Atom(ka) => {
                        let t = c.convert(then_branch, scope, MetaK::Atom(ka));
                        let f = c.convert(else_branch, scope, MetaK::Atom(ka));
                        c.builder.call_if(cond_atom, t, f)
                    }
                    ctx @ MetaK::Ctx(_) => {
                        // Bind a join point: ((λcont (j) (%if c (…j) (…j))) κ)
                        let j = c.fresh("j");
                        let jk = c.reify(ctx);
                        let t = c.convert(then_branch, scope, MetaK::Atom(AExp::Var(j)));
                        let f = c.convert(else_branch, scope, MetaK::Atom(AExp::Var(j)));
                        let branch = c.builder.call_if(cond_atom, t, f);
                        let binder = c.builder.lam(vec![j], branch, LamSort::Cont);
                        c.builder.call_app(AExp::Lam(binder), vec![jk])
                    }
                })
            }
            Expr::Let { bindings, body } => {
                self.convert_let(bindings, body, scope, scope.clone(), k)
            }
            Expr::Letrec { bindings, body } => {
                let mut inner = scope.clone();
                let mut renamed = Vec::with_capacity(bindings.len());
                for (name, _) in bindings {
                    let fresh = self.fresh_from(*name);
                    inner = inner.bind(*name, fresh);
                    renamed.push(fresh);
                }
                let mut fix_bindings = Vec::with_capacity(bindings.len());
                for ((_, value), fresh) in bindings.iter().zip(&renamed) {
                    let lam = self.convert_lambda(value, &inner);
                    fix_bindings.push((*fresh, lam));
                }
                let body_call = self.convert(body, &inner, k);
                self.builder.call_fix(fix_bindings, body_call)
            }
            Expr::Prim { op, args } => self.atomize_all(args, scope, |c, atoms| {
                let kont = c.reify(k);
                c.builder.call_prim(*op, atoms, kont)
            }),
            Expr::Spawn(body) => {
                // (spawn e) ≡ (%spawn (λproc (%k) ⟦e⟧ in %k) κ): the thread
                // body becomes a procedure whose only parameter is the
                // thread-return continuation the machine supplies.
                let thunk = Expr::Lambda {
                    params: vec![],
                    body: body.clone(),
                };
                let lam = self.convert_lambda(&thunk, scope);
                let kont = self.reify(k);
                self.builder.call_spawn(AExp::Lam(lam), kont)
            }
            Expr::Join(handle) => self.atomize(handle, scope, |c, target| {
                let kont = c.reify(k);
                c.builder.call_join(target, kont)
            }),
        }
    }

    /// Converts bindings left-to-right with *parallel* scoping: every
    /// right-hand side is converted under the outer scope; the body sees
    /// all bindings.
    fn convert_let(
        &mut self,
        bindings: &[(Symbol, Expr)],
        body: &Expr,
        outer: &Scope,
        acc: Scope,
        k: MetaK<'_>,
    ) -> CallId {
        match bindings.split_first() {
            None => self.convert(body, &acc, k),
            Some(((name, value), rest)) => {
                let fresh = self.fresh_from(*name);
                let acc = acc.bind(*name, fresh);
                // ((λcont (x') <rest>) value)
                let rest_call = self.convert_let(rest, body, outer, acc, k);
                let binder = self.builder.lam(vec![fresh], rest_call, LamSort::Cont);
                self.convert(value, outer, MetaK::Atom(AExp::Lam(binder)))
            }
        }
    }

    /// Converts a user `lambda` into a CPS procedure with an extra
    /// continuation parameter.
    fn convert_lambda(&mut self, e: &Expr, scope: &Scope) -> crate::cps::LamId {
        let Expr::Lambda { params, body } = e else {
            panic!("convert_lambda on non-lambda expression");
        };
        let mut inner = scope.clone();
        let mut cps_params = Vec::with_capacity(params.len() + 1);
        for p in params {
            let fresh = self.fresh_from(*p);
            inner = inner.bind(*p, fresh);
            cps_params.push(fresh);
        }
        let kparam = self.fresh("k");
        cps_params.push(kparam);
        let body_call = self.convert(body, &inner, MetaK::Atom(AExp::Var(kparam)));
        self.builder.lam(cps_params, body_call, LamSort::Proc)
    }

    /// Evaluates `e` to an atom and hands it to `then`.
    fn atomize<'a>(
        &mut self,
        e: &'a Expr,
        scope: &'a Scope,
        then: impl FnOnce(&mut Converter, AExp) -> CallId + 'a,
    ) -> CallId {
        match e {
            Expr::Lit(l) => then(self, AExp::Lit(*l)),
            Expr::Var(v) => {
                let atom = AExp::Var(scope.lookup(*v));
                then(self, atom)
            }
            Expr::Lambda { .. } => {
                let lam = self.convert_lambda(e, scope);
                then(self, AExp::Lam(lam))
            }
            _ => self.convert(e, scope, MetaK::ctx(then)),
        }
    }

    /// Evaluates all `es` to atoms, left-to-right.
    #[allow(clippy::type_complexity)]
    fn atomize_all<'a>(
        &mut self,
        es: &'a [Expr],
        scope: &'a Scope,
        then: impl FnOnce(&mut Converter, Vec<AExp>) -> CallId + 'a,
    ) -> CallId {
        fn go<'a>(
            c: &mut Converter,
            es: &'a [Expr],
            scope: &'a Scope,
            mut acc: Vec<AExp>,
            then: AtomsFn<'a>,
        ) -> CallId {
            match es.split_first() {
                None => then(c, acc),
                Some((e, rest)) => c.atomize(e, scope, move |c, atom| {
                    acc.push(atom);
                    go(c, rest, scope, acc, then)
                }),
            }
        }
        go(
            self,
            es,
            scope,
            Vec::with_capacity(es.len()),
            Box::new(then),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cps::{CallKind, Lit, PrimOp};
    use crate::scheme::parse_program;

    fn convert(src: &str) -> CpsProgram {
        cps_convert(&parse_program(src).unwrap())
    }

    /// Collects every lam sort in the program.
    fn sorts(p: &CpsProgram) -> (usize, usize) {
        let mut procs = 0;
        let mut conts = 0;
        for l in p.lam_ids() {
            match p.lam(l).sort {
                LamSort::Proc => procs += 1,
                LamSort::Cont => conts += 1,
            }
        }
        (procs, conts)
    }

    #[test]
    fn literal_program_halts_directly() {
        let p = convert("42");
        match &p.call(p.entry()).kind {
            CallKind::Halt { value } => assert_eq!(*value, AExp::Lit(Lit::Int(42))),
            other => panic!("expected halt, got {other:?}"),
        }
    }

    #[test]
    fn user_lambdas_are_procs_admin_lambdas_are_conts() {
        let p = convert("((lambda (f) (f 1)) (lambda (x) x))");
        let (procs, conts) = sorts(&p);
        assert_eq!(procs, 2);
        assert!(conts >= 1); // at least the halt continuation
    }

    #[test]
    fn user_lambda_gains_continuation_parameter() {
        let p = convert("(lambda (x y) x)");
        let lam = p
            .lam_ids()
            .map(|l| p.lam(l))
            .find(|l| l.sort == LamSort::Proc)
            .expect("a proc lam");
        assert_eq!(lam.params.len(), 3, "x, y, and the continuation");
    }

    #[test]
    fn alpha_renaming_distinguishes_shadowed_binders() {
        let p = convert("((lambda (x) ((lambda (x) x) x)) 1)");
        let param_syms: Vec<_> = p
            .lam_ids()
            .map(|l| p.lam(l))
            .filter(|l| l.sort == LamSort::Proc)
            .map(|l| l.params[0])
            .collect();
        assert_eq!(param_syms.len(), 2);
        assert_ne!(
            param_syms[0], param_syms[1],
            "shadowed x must be renamed apart"
        );
    }

    #[test]
    fn if_produces_branch_call() {
        let p = convert("(if #t 1 2)");
        let has_if = p
            .call_ids()
            .any(|c| matches!(p.call(c).kind, CallKind::If { .. }));
        assert!(has_if);
    }

    #[test]
    fn if_join_point_avoids_lam_duplication() {
        // In a non-tail position the two branches must target one join
        // continuation rather than duplicating the context.
        let p = convert("(+ (if #t 1 2) 10)");
        let mut join_targets = Vec::new();
        for c in p.call_ids() {
            if let CallKind::If {
                then_branch,
                else_branch,
                ..
            } = &p.call(c).kind
            {
                for b in [*then_branch, *else_branch] {
                    if let CallKind::App { func, .. } = &p.call(b).kind {
                        join_targets.push(*func);
                    }
                }
            }
        }
        assert_eq!(join_targets.len(), 2);
        assert_eq!(
            join_targets[0], join_targets[1],
            "both branches call the join variable"
        );
        assert!(matches!(join_targets[0], AExp::Var(_)));
    }

    #[test]
    fn letrec_becomes_fix() {
        let p = convert(
            "(letrec ((f (lambda (n k) (if (zero? n) k (f (- n 1) k)))))
               (f 3 0))",
        );
        assert!(p
            .call_ids()
            .any(|c| matches!(p.call(c).kind, CallKind::Fix { .. })));
    }

    #[test]
    fn prim_application_converts_to_primcall() {
        let p = convert("(+ 1 2)");
        let found = p.call_ids().find_map(|c| match &p.call(c).kind {
            CallKind::PrimCall { op, args, .. } => Some((*op, args.len())),
            _ => None,
        });
        assert_eq!(found, Some((PrimOp::Add, 2)));
    }

    #[test]
    fn let_uses_continuation_not_procedure() {
        // (let ((x 1)) x): the binder must be a Cont lam so that m-CFA does
        // not treat the let as a procedure call.
        let p = convert("(let ((x 1)) x)");
        match &p.call(p.entry()).kind {
            CallKind::App {
                func: AExp::Lam(l), ..
            } => {
                assert_eq!(p.lam(*l).sort, LamSort::Cont);
            }
            other => panic!("expected cont application, got {other:?}"),
        }
    }

    #[test]
    fn nested_calls_sequence_through_rv_continuations() {
        let p = convert("(define (f x) x) (f (f 1))");
        // Two applications of f and at least one %rv continuation.
        let (procs, conts) = sorts(&p);
        assert_eq!(procs, 1);
        assert!(conts >= 2);
    }

    #[test]
    fn free_vars_of_converted_closures_are_computed() {
        let p = convert("((lambda (x) (lambda (y) x)) 1)");
        let inner = p
            .lam_ids()
            .map(|l| (l, p.lam(l)))
            .find(|(_, l)| {
                l.sort == LamSort::Proc && l.params.len() == 2 && {
                    // the inner lambda's first param is derived from y
                    p.name(l.params[0]).starts_with("y")
                }
            })
            .map(|(id, _)| id)
            .expect("inner lambda present");
        let free: Vec<_> = p
            .free_vars(inner)
            .iter()
            .map(|s| p.name(*s).to_owned())
            .collect();
        assert!(
            free.iter().any(|n| n.starts_with("x")),
            "free vars: {free:?}"
        );
    }
}

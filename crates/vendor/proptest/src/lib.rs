//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the subset of proptest this repo's property tests use: the
//! [`strategy::Strategy`] trait with `prop_map` / `prop_flat_map` /
//! `prop_recursive`, range and regex-literal strategies, tuples,
//! [`collection::vec`], `prop_oneof!`, `Just`, `any::<T>()`, and the
//! `proptest!` / `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from upstream: generation is deterministic per test name
//! (no persistence files) and failing cases are reported but **not
//! shrunk**. Regex strategies support only the simple `[class]{m,n}`
//! concatenation patterns used in-repo.
//!
//! Two environment variables keep CI runs deterministic and bounded:
//!
//! * `PROPTEST_CASES` **caps** the per-property case count (a property
//!   asking for fewer cases keeps its own number);
//! * `PROPTEST_SEED` perturbs the per-test deterministic RNG stream
//!   (default 0 — the historical stream). Failure messages always name
//!   the active seed so a red CI run is reproducible locally with
//!   `PROPTEST_SEED=<seed> cargo test <name>`.

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The glob-import surface: `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Namespaced module access (`prop::collection::vec`).
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Parses an environment variable as an integer, ignoring it when
/// unset, empty, or malformed.
fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok()?.trim().parse().ok()
}

/// Runs `cases` deterministic test cases of `body`, panicking with the
/// failure message on the first failed case. Backs the `proptest!`
/// macro. `PROPTEST_CASES` caps the case count; `PROPTEST_SEED` selects
/// the (deterministic) case stream and is echoed on failure.
pub fn run_cases<F>(test_name: &str, cases: u32, mut body: F)
where
    F: FnMut(&mut test_runner::TestRng) -> Result<(), test_runner::TestCaseError>,
{
    let cases = match env_u64("PROPTEST_CASES") {
        Some(cap) => cases.min(u32::try_from(cap).unwrap_or(u32::MAX)).max(1),
        None => cases,
    };
    let seed = env_u64("PROPTEST_SEED").unwrap_or(0);
    let mut rng = test_runner::TestRng::deterministic_seeded(test_name, seed);
    let mut rejected = 0u32;
    let mut ran = 0u32;
    while ran < cases {
        match body(&mut rng) {
            Ok(()) => ran += 1,
            Err(test_runner::TestCaseError::Reject) => {
                rejected += 1;
                // Mirror proptest's global rejection cap so a bad
                // prop_assume! cannot loop forever.
                if rejected > cases.saturating_mul(16).max(1024) {
                    panic!("{test_name}: too many prop_assume! rejections ({rejected})");
                }
            }
            Err(test_runner::TestCaseError::Fail(msg)) => {
                panic!(
                    "{test_name}: property failed at case {ran} under seed {seed} \
                     (reproduce with PROPTEST_SEED={seed} cargo test {test_name}): {msg}"
                );
            }
        }
    }
}

/// Declares property tests. Each `name in strategy` argument is drawn
/// freshly per case; the body may use `prop_assert!`-family macros and
/// `return Ok(())` for early success.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
     $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $cfg;
                $crate::run_cases(stringify!($name), config.cases, |rng| {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), rng);)*
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                });
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            @with_config ($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)*)),
            );
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (lhs, rhs) = (&$a, &$b);
        $crate::prop_assert!(
            lhs == rhs,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($a), stringify!($b), lhs, rhs
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (lhs, rhs) = (&$a, &$b);
        $crate::prop_assert!(lhs == rhs, $($fmt)*);
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (lhs, rhs) = (&$a, &$b);
        $crate::prop_assert!(
            lhs != rhs,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($a),
            stringify!($b),
            lhs
        );
    }};
}

/// Discards the current case (drawn inputs did not satisfy a
/// precondition); the runner draws a fresh case instead.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

/// A strategy for `Vec<S::Value>` with a length drawn from `len`.
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let width = (self.len.end - self.len.start).max(1) as u64;
        let n = self.len.start + rng.below(width) as usize;
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// A vector strategy with per-element strategy `element` and length in
/// `len` (half-open, like upstream).
pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, len }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::Just;

    #[test]
    fn lengths_respect_range() {
        let s = vec(Just(7u8), 2..5);
        let mut rng = TestRng::deterministic("vec-lens");
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((2..5).contains(&v.len()), "{}", v.len());
            assert!(v.iter().all(|&x| x == 7));
        }
    }
}

//! The `Strategy` trait and the combinators this workspace uses.

use crate::test_runner::TestRng;
use std::marker::PhantomData;
use std::ops::Range;
use std::sync::Arc;

/// A generator of values of type `Self::Value`.
///
/// Unlike upstream proptest there is no value tree and no shrinking:
/// `generate` draws one value directly.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    /// Builds a recursive strategy: `self` is the leaf; `branch` wraps a
    /// strategy for depth `d` into one for depth `d + 1`. `_desired_size`
    /// and `_expected_branch_size` are accepted for source compatibility.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        branch: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf: BoxedStrategy<Self::Value> = self.boxed();
        let mut current = leaf.clone();
        for _ in 0..depth {
            let deeper = branch(current).boxed();
            // Mix leaves back in at every level so expected size stays
            // bounded even at full depth.
            current = Union::new(vec![leaf.clone(), deeper]).boxed();
        }
        current
    }

    /// Type-erases the strategy (cheaply clonable).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(self))
    }
}

/// A cheaply clonable, type-erased strategy.
pub struct BoxedStrategy<T>(Arc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

impl<T> std::fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone, Debug)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Uniform choice among strategies of one value type (`prop_oneof!`).
#[derive(Clone)]
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over `options` (must be non-empty).
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

impl<T> std::fmt::Debug for Union<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Union({} options)", self.options.len())
    }
}

/// Always generates a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The canonical strategy for `T` (see [`Arbitrary`]).
#[derive(Clone, Debug)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Returns the whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

// ---------------------------------------------------------------------
// Ranges as strategies
// ---------------------------------------------------------------------

macro_rules! impl_range_strategy {
    ($($t:ty => $wide:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let width = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                assert!(width > 0, "cannot sample from empty range");
                (self.start as $wide).wrapping_add(rng.below(width) as $wide) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
                     i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64);

// ---------------------------------------------------------------------
// Tuples of strategies
// ---------------------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);

// ---------------------------------------------------------------------
// Regex-literal string strategies
// ---------------------------------------------------------------------

/// One atom of the supported regex subset: a set of candidate chars plus
/// a repetition range.
#[derive(Clone, Debug)]
struct RegexAtom {
    chars: Vec<char>,
    min: u32,
    max: u32,
}

fn parse_simple_regex(pattern: &str) -> Vec<RegexAtom> {
    let mut atoms = Vec::new();
    let mut chars = pattern.chars().peekable();
    while let Some(c) = chars.next() {
        let set: Vec<char> = match c {
            '[' => {
                let mut set = Vec::new();
                let mut prev: Option<char> = None;
                loop {
                    let Some(c) = chars.next() else {
                        panic!("unterminated character class in regex {pattern:?}")
                    };
                    match c {
                        ']' => break,
                        '-' if prev.is_some() && chars.peek().is_some_and(|&c| c != ']') => {
                            let lo = prev.take().expect("range start");
                            let hi = chars.next().expect("range end");
                            for code in lo as u32..=hi as u32 {
                                set.push(char::from_u32(code).expect("valid char range"));
                            }
                        }
                        other => {
                            set.push(other);
                            prev = Some(other);
                        }
                    }
                }
                set
            }
            '\\' => vec![chars.next().expect("escaped char")],
            literal => vec![literal],
        };
        let (min, max) = match chars.peek() {
            Some('{') => {
                chars.next();
                let spec: String = chars.by_ref().take_while(|&c| c != '}').collect();
                match spec.split_once(',') {
                    Some((lo, hi)) => (
                        lo.parse().expect("repeat lower bound"),
                        hi.parse().expect("repeat upper bound"),
                    ),
                    None => {
                        let n = spec.parse().expect("repeat count");
                        (n, n)
                    }
                }
            }
            Some('*') => {
                chars.next();
                (0, 8)
            }
            Some('+') => {
                chars.next();
                (1, 8)
            }
            Some('?') => {
                chars.next();
                (0, 1)
            }
            _ => (1, 1),
        };
        atoms.push(RegexAtom {
            chars: set,
            min,
            max,
        });
    }
    atoms
}

impl Strategy for &'static str {
    type Value = String;
    /// Treats the string as a regex from the supported subset
    /// (character classes, literals, `{m,n}`/`*`/`+`/`?` repetition) and
    /// generates a matching string.
    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for atom in parse_simple_regex(self) {
            let reps = atom.min + rng.below(u64::from(atom.max - atom.min + 1)) as u32;
            for _ in 0..reps {
                let i = rng.below(atom.chars.len() as u64) as usize;
                out.push(atom.chars[i]);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::deterministic("strategy-tests")
    }

    #[test]
    fn ranges_generate_in_bounds() {
        let mut r = rng();
        for _ in 0..500 {
            let v = (0u64..10_000).generate(&mut r);
            assert!(v < 10_000);
            let s = (-100i64..100).generate(&mut r);
            assert!((-100..100).contains(&s));
        }
    }

    #[test]
    fn regex_symbols_match_expected_shape() {
        let mut r = rng();
        for _ in 0..200 {
            let s = "[a-z][a-z0-9-]{0,8}".generate(&mut r);
            assert!(!s.is_empty() && s.len() <= 9, "{s:?}");
            assert!(s.chars().next().unwrap().is_ascii_lowercase(), "{s:?}");
            assert!(
                s.chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-'),
                "{s:?}"
            );
        }
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Debug)]
        enum Tree {
            Leaf(i64),
            Node(Vec<Tree>),
        }
        fn size(t: &Tree) -> usize {
            match t {
                Tree::Leaf(_) => 1,
                Tree::Node(ts) => 1 + ts.iter().map(size).sum::<usize>(),
            }
        }
        let strat = any::<i64>()
            .prop_map(Tree::Leaf)
            .prop_recursive(4, 32, 5, |inner| {
                crate::collection::vec(inner, 0..5).prop_map(Tree::Node)
            });
        let mut r = rng();
        for _ in 0..100 {
            let t = strat.generate(&mut r);
            assert!(size(&t) < 10_000);
        }
    }

    #[test]
    fn union_draws_all_options() {
        let u = Union::new(vec![Just(1u8).boxed(), Just(2u8).boxed()]);
        let mut r = rng();
        let draws: std::collections::BTreeSet<u8> = (0..100).map(|_| u.generate(&mut r)).collect();
        assert_eq!(draws.len(), 2);
    }
}

//! Deterministic case runner support: the per-test RNG and config.

/// Why a single test case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The case was discarded by `prop_assume!`.
    Reject,
    /// The case failed an assertion.
    Fail(String),
}

/// Runner configuration (only `cases` is honoured by the stand-in).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases required per property.
    pub cases: u32,
    /// Accepted for source compatibility; unused by the stand-in.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 0,
        }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..Self::default()
        }
    }
}

/// The per-test deterministic generator (SplitMix64 seeded by test name).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from the FNV-1a hash of `name`: every run of a given test
    /// explores the same cases.
    pub fn deterministic(name: &str) -> Self {
        Self::deterministic_seeded(name, 0)
    }

    /// Seeds from the FNV-1a hash of `name` perturbed by `seed`
    /// (`PROPTEST_SEED`): seed 0 is the historical default stream, any
    /// other value explores a different — still fully reproducible —
    /// band of cases.
    pub fn deterministic_seeded(name: &str, seed: u64) -> Self {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng {
            state: h ^ seed.wrapping_mul(0x9e3779b97f4a7c15),
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "cannot draw below 0");
        self.next_u64() % bound
    }
}

//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API surface `benches/analyses.rs` uses — groups,
//! `bench_with_input`, `BenchmarkId`, the `criterion_group!` /
//! `criterion_main!` macros — with a simple median-of-samples timer
//! instead of criterion's statistical machinery. Good enough to spot
//! large regressions with `cargo bench`; the serious measurements live
//! in the `cfa-bench` table binaries.

use std::time::{Duration, Instant};

/// Measurement strategies (only wall time exists here).
pub mod measurement {
    /// Wall-clock measurement marker.
    #[derive(Debug, Default, Clone, Copy)]
    pub struct WallTime;
}

/// A benchmark identifier: `function_id/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id from a function name and a displayable parameter.
    pub fn new(function_id: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_id.into(), parameter),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Drives one benchmark's iterations.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    median: Duration,
}

impl Bencher {
    /// Times `routine` over the configured sample count and records the
    /// median.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let mut times: Vec<Duration> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            std::hint::black_box(routine());
            times.push(start.elapsed());
        }
        times.sort();
        self.median = times[times.len() / 2];
    }
}

/// The top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_, measurement::WallTime> {
        println!("group {name}");
        BenchmarkGroup {
            _criterion: self,
            samples: 3,
            _measurement: measurement::WallTime,
        }
    }

    /// Runs one standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: 3,
            median: Duration::ZERO,
        };
        f(&mut b);
        println!("  {name}: {:?} (median of {})", b.median, b.samples);
        self
    }
}

/// A group of benchmarks sharing tuning parameters.
#[derive(Debug)]
pub struct BenchmarkGroup<'a, M> {
    _criterion: &'a mut Criterion,
    samples: usize,
    _measurement: M,
}

impl<M> BenchmarkGroup<'_, M> {
    /// Sets the sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Accepted for compatibility; the stand-in has no time targets.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for compatibility; the stand-in does not warm up.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmarks `f` against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: self.samples,
            median: Duration::ZERO,
        };
        f(&mut b, input);
        println!("  {id}: {:?} (median of {})", b.median, self.samples);
        self
    }

    /// Benchmarks a closure with no input.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: self.samples,
            median: Duration::ZERO,
        };
        f(&mut b);
        println!("  {name}: {:?} (median of {})", b.median, self.samples);
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

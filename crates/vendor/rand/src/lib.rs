//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the *subset* of the `rand 0.8` API it actually uses: [`rngs::StdRng`]
//! seeded with [`SeedableRng::seed_from_u64`], and the [`Rng`] methods
//! `gen`, `gen_range`, and `gen_bool`. The generator is SplitMix64 —
//! deterministic, fast, and plenty for seeded test-case generation (it
//! is NOT the real StdRng stream, so seeds produce different programs
//! than upstream rand would; all in-repo consumers only rely on
//! determinism, not on a specific stream).

use std::ops::Range;

/// Core entropy source: 64 random bits at a time.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of seedable generators.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a `Range`.
pub trait SampleUniform: Copy {
    /// Samples uniformly from `[range.start, range.end)`.
    fn sample(rng: &mut dyn FnMut() -> u64, range: Range<Self>) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample(rng: &mut dyn FnMut() -> u64, range: Range<Self>) -> Self {
                let width = (range.end as $wide).wrapping_sub(range.start as $wide) as u64;
                assert!(width > 0, "cannot sample from empty range");
                (range.start as $wide).wrapping_add((rng() % width) as $wide) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
                     i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64);

/// Types producible by [`Rng::gen`].
pub trait Standard {
    /// Produces a value from 64 random bits.
    fn from_bits(bits: u64) -> Self;
}

impl Standard for bool {
    fn from_bits(bits: u64) -> bool {
        bits & 1 == 1
    }
}

impl Standard for u64 {
    fn from_bits(bits: u64) -> u64 {
        bits
    }
}

impl Standard for u32 {
    fn from_bits(bits: u64) -> u32 {
        (bits >> 32) as u32
    }
}

/// The user-facing sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of an inferred type.
    fn gen<T: Standard>(&mut self) -> T {
        T::from_bits(self.next_u64())
    }

    /// Samples uniformly from `[range.start, range.end)`.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        let mut draw = || self.next_u64();
        T::sample(&mut draw, range)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        // 53 bits of mantissa is enough resolution for test generators.
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<T: RngCore> Rng for T {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A deterministic seeded generator (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng {
                state: seed.wrapping_add(0x9e3779b97f4a7c15),
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(-5i32..50);
            assert!((-5..50).contains(&v));
            let u = rng.gen_range(0usize..3);
            assert!(u < 3);
        }
    }

    #[test]
    fn gen_bool_respects_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}

//! The complete reproduction of Might, Smaragdakis & Van Horn,
//! *Resolving and Exploiting the k-CFA Paradox* (PLDI 2010), as one
//! facade crate.
//!
//! | module | contents |
//! |---|---|
//! | [`syntax`] | S-exprs, mini-Scheme, CPS core language, CPS conversion |
//! | [`concrete`] | concrete CPS machines (shared-env §3.2, flat-env §5.1) |
//! | [`analysis`] | k-CFA (§3), m-CFA (§5), naive polynomial k-CFA (§6), naive state search (§3.6) |
//! | [`fj`] | A-Normal Featherweight Java: parser, concrete semantics, OO k-CFA (§4), Datalog points-to, ΓCFA (§8) |
//! | [`datalog`] | the semi-naive Datalog engine behind the §1 "Datalog road" |
//! | [`workloads`] | the worst-case family, Figure 1/2 programs, the §6.2 suite + OO suite |
//!
//! # Quick start
//!
//! ```
//! use cfa::analysis::{Analysis, EngineLimits};
//!
//! let program = cfa::compile("(define (id x) x) (let ((a (id 3))) (id 4))")?;
//! let m1 = cfa::analyze(&program, Analysis::MCfa { m: 1 }, EngineLimits::default());
//! assert!(m1.halt_values.contains("4"));
//! assert!(!m1.halt_values.contains("3")); // context-sensitive!
//! # Ok::<(), cfa::syntax::ParseError>(())
//! ```

#![warn(missing_docs)]

pub use cfa_concrete as concrete;
pub use cfa_core as analysis;
pub use cfa_datalog as datalog;
pub use cfa_fj as fj;
pub use cfa_syntax as syntax;
pub use cfa_workloads as workloads;

pub use cfa_core::{analyze, Analysis, Metrics};
pub use cfa_syntax::{compile, CpsProgram};

/// Compiles mini-Scheme source and runs one analysis — the one-call API.
///
/// # Errors
///
/// Returns the parse error on malformed source.
///
/// # Examples
///
/// ```
/// use cfa::analysis::Analysis;
///
/// let m = cfa::analyze_source("((lambda (x) x) 1)", Analysis::KCfa { k: 1 })?;
/// assert!(m.status.is_complete());
/// # Ok::<(), cfa::syntax::ParseError>(())
/// ```
pub fn analyze_source(src: &str, analysis: Analysis) -> Result<Metrics, cfa_syntax::ParseError> {
    let program = compile(src)?;
    Ok(analyze(
        &program,
        analysis,
        cfa_core::EngineLimits::default(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn facade_round_trip() {
        let m = analyze_source("42", Analysis::KCfa { k: 0 }).unwrap();
        assert!(m.halt_values.contains("42"));
    }

    #[test]
    fn facade_surfaces_parse_errors() {
        assert!(analyze_source("(", Analysis::KCfa { k: 0 }).is_err());
    }
}

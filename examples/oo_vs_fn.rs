//! Figures 1 & 2 live: the *same* N×M program in OO and functional
//! form, analyzed by the *same* k-CFA specification, produces O(N+M)
//! abstract environments for objects but O(N·M) for closures.
//!
//! Run with: `cargo run -p cfa --example oo_vs_fn`

use cfa::analysis::{analyze_kcfa, analyze_mcfa, EngineLimits};
use cfa::fj::{analyze_fj, parse_fj, FjAnalysisOptions};

fn main() {
    let (n, m) = (5usize, 7usize);
    println!("N = {n}, M = {m}  (so N·M = {}, N+M = {})\n", n * m, n + m);

    // Functional form (Figure 2): the probe lambda closes over x and y.
    let fn_src = cfa::workloads::fn_program(n, m);
    let fn_prog = cfa::compile(&fn_src).expect("compiles");
    let k1 = analyze_kcfa(&fn_prog, 1, EngineLimits::default());
    let probe_envs: usize = fn_prog
        .lam_ids()
        .filter(|&l| {
            fn_prog
                .lam(l)
                .params
                .first()
                .map(|p| fn_prog.name(*p).starts_with("paradox-probe"))
                .unwrap_or(false)
        })
        .map(|l| k1.metrics.env_count(l))
        .sum();
    println!("functional, k-CFA(k=1): inner λ analyzed in {probe_envs} environments (N·M)");

    // Same program under m-CFA: flat environments collapse the product.
    let m1 = analyze_mcfa(&fn_prog, 1, EngineLimits::default());
    println!(
        "functional, m-CFA(m=1): {} distinct environments program-wide (O(N+M))",
        m1.metrics.distinct_envs
    );

    // OO form (Figure 1): explicit ClosureX / ClosureXY objects.
    let oo_src = cfa::workloads::oo_program(n, m);
    let oo_prog = parse_fj(&oo_src).expect("parses");
    let fj = analyze_fj(&oo_prog, FjAnalysisOptions::oo(1), EngineLimits::default());
    println!(
        "OO (Featherweight Java), k-CFA(k=1): {} abstract contexts (O(N+M))",
        fj.metrics.time_count
    );

    println!();
    println!("Same specification, different environment structure: the paradox.");
}

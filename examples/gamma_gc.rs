//! Abstract garbage collection (ΓCFA) live: the paper's §8 future-work
//! direction, applied to the naive per-state-store k-CFA.
//!
//! Run with: `cargo run -p cfa --example gamma_gc --release`

use cfa::analysis::naive::{analyze_kcfa_naive_with, NaiveLimits};
use cfa::analysis::Status;
use std::time::Duration;

fn main() {
    println!("Naive 1-CFA (per-state stores) with and without abstract GC\n");
    println!(
        "{:>3} {:>6} {:>14} {:>14} {:>12} {:>12}",
        "n", "terms", "states", "states (GC)", "time", "time (GC)"
    );
    let limits = NaiveLimits {
        max_states: 100_000,
        time_budget: Some(Duration::from_secs(10)),
    };
    for n in [1usize, 2, 3, 4] {
        let src = cfa::workloads::worst_case_source(n);
        let program = cfa::compile(&src).expect("compiles");
        let plain = analyze_kcfa_naive_with(&program, 1, limits, false);
        let gc = analyze_kcfa_naive_with(&program, 1, limits, true);
        let mark = |r: &cfa::analysis::NaiveResult| {
            if r.status == Status::Completed {
                r.state_count.to_string()
            } else {
                format!(">{}", r.state_count)
            }
        };
        println!(
            "{n:>3} {:>6} {:>14} {:>14} {:>12} {:>12}",
            program.term_count(),
            mark(&plain),
            mark(&gc),
            format!("{:.0?}", plain.elapsed),
            format!("{:.0?}", gc.elapsed),
        );
    }
    println!();
    println!("Dead bindings differentiate states that are otherwise identical;");
    println!("collecting them makes the exponential family tractable for the");
    println!("naive algorithm — and never changes the computed halt values.");
}

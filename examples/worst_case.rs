//! The k-CFA paradox in one run: the Van Horn–Mairson worst-case
//! program forces shared-environment 1-CFA to enumerate exponentially
//! many abstract environments, while m-CFA (same precision on this
//! family!) stays polynomial.
//!
//! Run with: `cargo run -p cfa --example worst_case --release`

use cfa::analysis::{analyze_kcfa, analyze_mcfa, EngineLimits};
use std::time::Duration;

fn main() {
    println!(
        "{:>3} {:>6} {:>14} {:>14} {:>16} {:>16}",
        "n", "terms", "k=1 time", "m=1 time", "k=1 envs", "m=1 envs"
    );
    for n in [2usize, 4, 6, 8, 10, 12] {
        let src = cfa::workloads::worst_case_source(n);
        let program = cfa::compile(&src).expect("compiles");
        let budget = EngineLimits::timeout(Duration::from_secs(10));
        let k1 = analyze_kcfa(&program, 1, budget.clone());
        let m1 = analyze_mcfa(&program, 1, budget);
        println!(
            "{n:>3} {:>6} {:>14} {:>14} {:>16} {:>16}",
            program.term_count(),
            format!("{:?}", k1.metrics.elapsed),
            format!("{:?}", m1.metrics.elapsed),
            if k1.metrics.status.is_complete() {
                k1.metrics.distinct_envs.to_string()
            } else {
                format!("≥{} (cut off)", k1.metrics.distinct_envs)
            },
            m1.metrics.distinct_envs,
        );
    }
    println!();
    println!("k=1 environment counts grow like 2^n (shared-environment closures");
    println!("combine per-variable contexts); m-CFA's flat environments cannot.");
}

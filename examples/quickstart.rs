//! Quickstart: compile a program, execute it concretely, and analyze it
//! with every analysis in the paper's panel.
//!
//! Run with: `cargo run -p cfa --example quickstart`

use cfa::analysis::{Analysis, EngineLimits};
use cfa::concrete::base::Limits;

fn main() {
    let source = "
        (define (make-adder n) (lambda (m) (+ n m)))
        (define (apply-twice f x) (f (f x)))
        (apply-twice (make-adder 3) 10)";

    println!("Source:\n{source}\n");

    // 1. Compile to CPS.
    let program = cfa::compile(source).expect("program parses");
    println!(
        "CPS: {} λ-terms, {} call sites, {} terms total\n",
        program.lam_count(),
        program.call_count(),
        program.term_count()
    );

    // 2. Run it for real on both concrete machines.
    let shared = cfa::concrete::run_shared(&program, Limits::default());
    let flat = cfa::concrete::run_flat(&program, Limits::default());
    println!(
        "Concrete result (shared environments): {:?}",
        shared.outcome.value()
    );
    println!(
        "Concrete result (flat environments):   {:?}\n",
        flat.outcome.value()
    );

    // 3. Analyze with the paper's four analyses.
    println!(
        "{:>10} {:>10} {:>9} {:>9} {:>12}  halt values",
        "analysis", "configs", "store", "inline", "time"
    );
    for analysis in Analysis::paper_panel() {
        let m = cfa::analyze(&program, analysis, EngineLimits::default());
        let values: Vec<&str> = m.halt_values.iter().map(String::as_str).collect();
        println!(
            "{:>10} {:>10} {:>9} {:>7}/{:<2} {:>12?}  {{{}}}",
            analysis.short_name(),
            m.config_count,
            m.store_entries,
            m.singleton_user_calls,
            m.reachable_user_calls,
            m.elapsed,
            values.join(", ")
        );
    }
}

; `sat` — the suite's back-tracking SAT solver with failure
; continuations (cfa_workloads::suite, row "sat"), shipped as a
; standalone file so the CLI can be demoed and smoke-tested on a real
; suite program:
;
;   cfa trace --out profile.json --threads 4 examples/sat.scm
;
; The failure continuations make the flow graph branchy enough that a
; parallel trace shows steals and wake batches, not just eval spans.
(define (my-assq k alist)
  (cond ((null? alist) #f)
        ((eq? (car (car alist)) k) (car alist))
        (else (my-assq k (cdr alist)))))
(define (lit-var l) (car l))
(define (lit-pos? l) (car (cdr l)))
(define (mk-lit v pos) (cons v (cons pos '())))
(define (eval-lit l asn)
  (let ((entry (my-assq (lit-var l) asn)))
    (if entry
        (if (lit-pos? l) (cdr entry) (not (cdr entry)))
        #f)))
(define (eval-clause c asn)
  (if (null? c) #f
      (if (eval-lit (car c) asn) #t (eval-clause (cdr c) asn))))
(define (eval-formula f asn)
  (if (null? f) #t
      (if (eval-clause (car f) asn) (eval-formula (cdr f) asn) #f)))
(define (solve vars formula asn fail)
  (if (null? vars)
      (if (eval-formula formula asn) asn (fail))
      (solve (cdr vars) formula
             (cons (cons (car vars) #t) asn)
             (lambda ()
               (solve (cdr vars) formula
                      (cons (cons (car vars) #f) asn)
                      fail)))))
(define (clause2 a b) (cons a (cons b '())))
(define (clause1 a) (cons a '()))
(let* ((f (list
            (clause2 (mk-lit 'p #t) (mk-lit 'q #t))
            (clause2 (mk-lit 'p #f) (mk-lit 'r #t))
            (clause2 (mk-lit 'q #f) (mk-lit 'r #f))
            (clause1 (mk-lit 's #t))
            (clause2 (mk-lit 's #f) (mk-lit 'p #f))))
       (result (solve (list 'p 'q 'r 's) f '() (lambda () 'unsat))))
  (if (eq? result 'unsat) 'unsat 'sat))

//! Abstract garbage collection and counting for OO programs (§8).
//!
//! The paper's closing section proposes carrying ΓCFA — abstract GC and
//! abstract counting — across the functional/OO bridge. This example
//! shows both on a small Featherweight Java program: GC shrinks the
//! per-state search, and counting certifies most addresses as singular
//! (must-alias), with GC making *more* of them singular.
//!
//! Run with: `cargo run -p cfa --example oo_gamma_gc`

use cfa::fj::naive::{analyze_fj_naive, FjNaiveOptions};
use cfa::fj::parse_fj;

const PROGRAM: &str = "
    class Cell extends Object {
      Object value;
      Cell(Object value0) { super(); this.value = value0; }
      Object get() { return this.value; }
      Cell wrap() { Cell w; w = new Cell(this.get()); return w; }
    }
    class Payload extends Object { Payload() { super(); } }
    class Main extends Object {
      Main() { super(); }
      Object main() {
        Cell a;
        a = new Cell(new Payload());
        Cell b;
        b = a.wrap();
        Cell c;
        c = b.wrap();
        return c.get();
      }
    }";

fn main() {
    let program = parse_fj(PROGRAM).expect("example program parses");

    let plain = analyze_fj_naive(&program, FjNaiveOptions::paper(1).with_counting());
    let gc = analyze_fj_naive(&program, FjNaiveOptions::paper(1).with_gc().with_counting());

    println!("per-state OO k-CFA (k = 1) on the Cell/wrap program");
    println!();
    println!("                    plain      with abstract GC");
    println!(
        "states:        {:>10} {:>21}",
        plain.state_count, gc.state_count
    );
    println!(
        "singular:      {:>9.1}% {:>20.1}%",
        100.0 * plain.singular_ratio(),
        100.0 * gc.singular_ratio()
    );
    let classes = |r: &cfa::fj::FjNaiveResult| {
        r.halt_classes
            .iter()
            .map(|&c| program.name(program.class(c).name).to_owned())
            .collect::<Vec<_>>()
            .join(", ")
    };
    println!(
        "main returns:  {:>10} {:>21}",
        classes(&plain),
        classes(&gc)
    );
    assert_eq!(
        plain.halt_classes, gc.halt_classes,
        "GC must be precision-sound"
    );
    assert!(gc.state_count <= plain.state_count);

    println!();
    println!("Abstract GC restricts each state's store to what its environment");
    println!("and continuation chain can reach; dead caller frames vanish, states");
    println!("collide, and the search shrinks — at identical precision.");
}

//! Super-β inlining via abstract counting (the ΓCFA client).
//!
//! The paper's inlining metric asks which call sites are *monomorphic*;
//! safe inlining of a closure body additionally needs the closure's
//! free variables to be unambiguous — each captured address must stand
//! for at most one concrete binding. Abstract counting (μ̂) certifies
//! exactly that, and context sensitivity is what makes captures
//! singular. This example shows a site that is monomorphic at every
//! depth but only becomes *environment-safe* to inline at k = 1.
//!
//! Run with: `cargo run -p cfa --example super_beta`

use cfa::analysis::naive::{analyze_kcfa_naive_gamma, GammaOptions, NaiveLimits};

// `make` closes over n. At k=0, both calls to `make` bind n at one
// abstract address, so the thunk's capture is plural; at k=1 the two
// bindings get distinct addresses and the capture is singular.
const SRC: &str = "(define (make n) (lambda () n))
                   (let* ((f (make 1)) (g (make 2))) (f))";

fn main() {
    let program = cfa::compile(SRC).expect("example compiles");
    let gamma = GammaOptions {
        abstract_gc: false,
        counting: true,
    };

    println!("program:\n  (define (make n) (lambda () n))");
    println!("  (let* ((f (make 1)) (g (make 2))) (f))");
    println!();
    println!(
        "{:>5} {:>12} {:>18} {:>14}",
        "k", "user sites", "monomorphic", "super-β safe"
    );
    for k in [0usize, 1] {
        let r = analyze_kcfa_naive_gamma(&program, k, NaiveLimits::default(), gamma);
        let user_sites = r
            .site_evidence
            .keys()
            .filter(|&&s| program.is_user_call(s))
            .count();
        let mono = r
            .site_evidence
            .iter()
            .filter(|(&s, ev)| program.is_user_call(s) && ev.lams.len() == 1)
            .count();
        let safe = r.super_beta_sites(&program).len();
        println!("{k:>5} {user_sites:>12} {mono:>18} {safe:>14}");
    }
    println!();

    let k0 = analyze_kcfa_naive_gamma(&program, 0, NaiveLimits::default(), gamma);
    let k1 = analyze_kcfa_naive_gamma(&program, 1, NaiveLimits::default(), gamma);
    assert!(k1.super_beta_sites(&program).len() > k0.super_beta_sites(&program).len());

    println!("Every site is monomorphic at both depths — the flow sets alone");
    println!("say \"inline away\". Counting disagrees at k=0: the thunk's capture");
    println!("of n is plural (both make-calls share n's address), so inlining");
    println!("(f) could conflate n=1 with n=2. One call-site of context splits");
    println!("the addresses, and counting certifies the site as super-β safe.");
}

//! Points-to analysis for Featherweight Java: run OO k-CFA on a small
//! class hierarchy and print the call graph it constructs on the fly.
//!
//! Run with: `cargo run -p cfa --example fj_pointsto`

use cfa::analysis::EngineLimits;
use cfa::fj::{analyze_fj, parse_fj, FjAnalysisOptions};

const PROGRAM: &str = "
class Shape extends Object {
  Shape() { super(); }
  Object area(Object scale) { return scale; }
}
class Circle extends Shape {
  Object radius;
  Circle(Object radius0) { super(); this.radius = radius0; }
  Object area(Object scale) { return this.radius; }
}
class Square extends Shape {
  Object side;
  Square(Object side0) { super(); this.side = side0; }
  Object area(Object scale) { return this.side; }
}
class Canvas extends Object {
  Canvas() { super(); }
  Object draw(Shape s, Object scale) { return s.area(scale); }
}
class Main extends Object {
  Main() { super(); }
  Object main() {
    Canvas c;
    c = new Canvas();
    Object u;
    u = new Object();
    Object a;
    a = c.draw(new Circle(new Object()), u);
    Object b;
    b = c.draw(new Square(new Object()), u);
    return b;
  }
}";

fn main() {
    let program = parse_fj(PROGRAM).expect("program parses");
    println!("{program}\n");

    for (label, options) in [
        ("k=0 (context-insensitive)", FjAnalysisOptions::oo(0)),
        ("k=1 (call-site sensitive) ", FjAnalysisOptions::oo(1)),
    ] {
        let result = analyze_fj(&program, options, EngineLimits::default());
        let m = &result.metrics;
        println!("--- {label} ---");
        println!(
            "configs: {}, store entries: {}, contexts: {}",
            m.config_count, m.store_entries, m.time_count
        );
        println!(
            "call sites: {} reachable, {} monomorphic (devirtualizable)",
            m.reachable_calls, m.monomorphic_calls
        );
        for (site, targets) in &m.call_targets {
            let names: Vec<String> = targets
                .iter()
                .map(|&t| {
                    let method = program.method(t);
                    format!(
                        "{}.{}",
                        program.name(program.class(method.owner).name),
                        program.name(method.name)
                    )
                })
                .collect();
            let caller = program.method(site.method);
            println!(
                "  {}.{}[{}] -> {{{}}}",
                program.name(program.class(caller.owner).name),
                program.name(caller.name),
                site.index,
                names.join(", ")
            );
        }
        println!();
    }
    println!("Under k=1 the two draw() sites keep separate contexts, so s.area()");
    println!("resolves per receiver; under k=0 both receivers merge at `s`.");
}

//! Tour of the §6.2 benchmark suite: execute every program concretely,
//! then analyze it with the paper's panel and compare precision.
//!
//! Run with: `cargo run -p cfa --example suite_tour --release`

use cfa::analysis::{Analysis, EngineLimits};
use cfa::concrete::base::Limits;

fn main() {
    println!(
        "{:>9} {:>6} {:>22}  {:>12} {:>12} {:>12} {:>12}",
        "program", "terms", "concrete result", "k=1", "m=1", "poly k=1", "k=0"
    );
    for p in cfa::workloads::suite() {
        let program = cfa::compile(p.source).expect("suite compiles");
        let run = cfa::concrete::run_shared(&program, Limits::default());
        let concrete = run.outcome.value().unwrap_or("(no value)").to_owned();
        let concrete_short = if concrete.len() > 20 {
            format!("{}…", &concrete[..19])
        } else {
            concrete
        };
        let mut cells = Vec::new();
        for analysis in Analysis::paper_panel() {
            let m = cfa::analyze(&program, analysis, EngineLimits::default());
            cells.push(format!(
                "{}/{} inl",
                m.singleton_user_calls, m.reachable_user_calls
            ));
        }
        println!(
            "{:>9} {:>6} {:>22}  {:>12} {:>12} {:>12} {:>12}",
            p.name,
            program.term_count(),
            concrete_short,
            cells[0],
            cells[1],
            cells[2],
            cells[3]
        );
    }
    println!();
    println!("inl = singleton call sites / reachable user call sites.");
}

//! The "Datalog road": OO k-CFA as a declarative points-to analysis.
//!
//! The paper resolves half the k-CFA paradox by noting that OO k-CFA is
//! expressible in Datalog — a language that can only express
//! polynomial-time algorithms. This example runs that Datalog encoding
//! on a small visitor-style program and prints the call graph and
//! points-to sets it derives, then confirms the abstract machine agrees.
//!
//! Run with: `cargo run -p cfa --example datalog_pointsto`

use cfa::analysis::EngineLimits;
use cfa::fj::kcfa::TickPolicy;
use cfa::fj::{analyze_fj, analyze_fj_datalog, parse_fj, FjAnalysisOptions, FjDatalogOptions};

const PROGRAM: &str = "
    class Shape extends Object {
      Shape() { super(); }
      Object area() { Object o; o = new Object(); return o; }
    }
    class Circle extends Shape {
      Circle() { super(); }
      Object area() { Object ac; ac = new Circle(); return ac; }
    }
    class Square extends Shape {
      Square() { super(); }
      Object area() { Object as; as = new Square(); return as; }
    }
    class Main extends Object {
      Main() { super(); }
      Object measure(Shape s) { return s.area(); }
      Object main() {
        Object a;
        a = this.measure(new Circle());
        Object b;
        b = this.measure(new Square());
        return b;
      }
    }";

fn main() {
    let program = parse_fj(PROGRAM).expect("example program parses");

    for k in [0, 1] {
        let result = analyze_fj_datalog(&program, FjDatalogOptions::sensitive(k));
        println!("== k = {k} ==");
        println!(
            "facts: {} input, {} at fixpoint ({} rounds)",
            result.edb_facts, result.total_facts, result.stats.rounds
        );
        println!("call graph:");
        for (site, targets) in &result.call_targets {
            let names: Vec<String> = targets
                .iter()
                .map(|&mid| {
                    let m = program.method(mid);
                    format!(
                        "{}.{}",
                        program.name(program.class(m.owner).name),
                        program.name(m.name)
                    )
                })
                .collect();
            println!("  stmt {:?} -> {}", site, names.join(", "));
        }
        let halts: Vec<&str> = result
            .halt_classes
            .iter()
            .map(|&c| program.name(program.class(c).name))
            .collect();
        println!("main() returns: {}", halts.join(", "));

        // The worklist machine agrees exactly.
        let machine = analyze_fj(
            &program,
            FjAnalysisOptions {
                k,
                policy: TickPolicy::OnInvocation,
                cast_filtering: false,
            },
            EngineLimits::default(),
        );
        assert_eq!(machine.metrics.call_targets, result.call_targets);
        assert_eq!(machine.metrics.halt_classes, result.halt_classes);
        println!("machine agrees: yes");
        println!();
    }

    // k=1 keeps the two measure() receivers apart: only Square reaches
    // halt. k=0 merges them.
    let k1 = analyze_fj_datalog(&program, FjDatalogOptions::sensitive(1));
    let names: Vec<&str> = k1
        .halt_classes
        .iter()
        .map(|&c| program.name(program.class(c).name))
        .collect();
    assert_eq!(names, vec!["Square"]);
    let k0 = analyze_fj_datalog(&program, FjDatalogOptions::insensitive());
    assert_eq!(k0.halt_classes.len(), 2);

    println!("Note how k=1 keeps the two measure() receivers apart (Square only");
    println!("reaches halt), while k=0 merges them — the context-sensitivity the");
    println!("paper's OO k-CFA provides at polynomial cost.");
    println!();
    println!("(The area() locals are deliberately named apart: k-CFA addresses");
    println!("are variable-name × context, so same-named locals of different");
    println!("methods share addresses when their contexts coincide — faithful");
    println!("to the paper's Var × Time address space.)");
}

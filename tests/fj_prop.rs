//! Property tests for Featherweight Java over randomized programs:
//! parsing, concrete execution, analysis termination, soundness.

use cfa::analysis::EngineLimits;
use cfa::fj::soundness::check_fj;
use cfa::fj::{analyze_fj, parse_fj, run_fj_traced, FjAnalysisOptions, FjLimits, FjOutcome};
use cfa::workloads::gen_fj::{random_fj_program, FjGenConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn generated_fj_parses_and_halts(seed in 0u64..5_000) {
        let src = random_fj_program(seed, FjGenConfig::default());
        let program = parse_fj(&src).unwrap_or_else(|e| panic!("seed {seed}: {e}\n{src}"));
        let run = run_fj_traced(&program, FjLimits::default(), false);
        prop_assert!(
            matches!(run.outcome, FjOutcome::Halted(_)),
            "seed {}: {:?}\n{}", seed, run.outcome, src
        );
    }

    #[test]
    fn generated_fj_analyses_terminate(seed in 0u64..5_000, k in 0usize..3) {
        let src = random_fj_program(seed, FjGenConfig::default());
        let program = parse_fj(&src).unwrap();
        for options in [FjAnalysisOptions::paper(k), FjAnalysisOptions::oo(k)] {
            let r = analyze_fj(&program, options, EngineLimits::default());
            prop_assert!(r.metrics.status.is_complete(), "seed {} {:?}", seed, options);
        }
    }

    #[test]
    fn generated_fj_kcfa_is_sound(seed in 0u64..5_000, k in 0usize..3) {
        let src = random_fj_program(seed, FjGenConfig::default());
        let program = parse_fj(&src).unwrap();
        let concrete = run_fj_traced(&program, FjLimits::default(), true);
        let result = analyze_fj(&program, FjAnalysisOptions::paper(k), EngineLimits::default());
        if let Err(v) = check_fj(&program, k, &concrete, &result) {
            prop_assert!(false, "seed {}, k={}: {}\n{}", seed, k, v, src);
        }
    }

    #[test]
    fn generated_fj_halt_class_covered(seed in 0u64..5_000) {
        let src = random_fj_program(seed, FjGenConfig::default());
        let program = parse_fj(&src).unwrap();
        let run = run_fj_traced(&program, FjLimits::default(), false);
        if let FjOutcome::Halted(class_name) = &run.outcome {
            for options in [FjAnalysisOptions::oo(0), FjAnalysisOptions::oo(1)] {
                let r = analyze_fj(&program, options, EngineLimits::default());
                let names: Vec<&str> = r
                    .metrics
                    .halt_classes
                    .iter()
                    .map(|&c| program.name(program.class(c).name))
                    .collect();
                prop_assert!(
                    names.contains(&class_name.as_str()),
                    "seed {}: {} not in {:?}\n{}", seed, class_name, names, src
                );
            }
        }
    }

    #[test]
    fn generated_fj_deeper_k_refines(seed in 0u64..5_000) {
        let src = random_fj_program(seed, FjGenConfig::default());
        let program = parse_fj(&src).unwrap();
        let k0 = analyze_fj(&program, FjAnalysisOptions::oo(0), EngineLimits::default());
        let k2 = analyze_fj(&program, FjAnalysisOptions::oo(2), EngineLimits::default());
        for (site, targets) in &k2.metrics.call_targets {
            if let Some(coarse) = k0.metrics.call_targets.get(site) {
                prop_assert!(
                    targets.is_subset(coarse),
                    "seed {}: site {:?} refined set not a subset", seed, site
                );
            }
        }
    }
}

//! Regression tests for the classic semi-naive failure modes:
//!
//! * **lost first wave** — an address that grows in two separate waves
//!   must deliver both waves to its delta-reading dependents (a delta
//!   snapshot reset between the waves would silently drop wave one);
//! * **double-join after an epoch-gate skip** — a delta re-delivered
//!   through a duplicate wakeup must die at the gate, not re-join
//!   (asserted via *exact* join counts and delta-fact counts);
//! * **deltas across parallel broadcast merges** — a 2-worker run whose
//!   facts cross replicas must reach the sequential fixpoint with the
//!   same total lattice growth per derivation.

use cfa::analysis::engine::{
    run_fixpoint_with, AbstractMachine, EngineLimits, EvalMode, Status, TrackedStore,
};
use cfa::analysis::kcfa::{analyze_kcfa, KCfaMachine};
use cfa::analysis::parallel::{run_fixpoint_parallel_with, ParallelMachine};
use std::collections::BTreeSet;

/// Config 0 pushes the reader (10) and two growers (1, 2). The growers
/// land values in address 0 in two separate waves; the reader
/// semi-naively copies **only the delta** of address 0 into address 1.
#[derive(Clone)]
struct TwoWaveCopier;

impl AbstractMachine for TwoWaveCopier {
    type Config = u32;
    type Addr = u32;
    type Val = u32;

    fn initial(&self) -> u32 {
        0
    }

    fn step(&mut self, c: &u32, s: &mut TrackedStore<'_, u32, u32>, out: &mut Vec<u32>) {
        match *c {
            // Schedule the reader before any wave lands.
            0 => out.extend([10, 1, 2]),
            1 => s.join(&0, [7]),
            2 => s.join(&0, [8]),
            10 => {
                let d = s.read_with_delta(&0);
                s.join_flow(&1, &d.new);
            }
            _ => {}
        }
    }
}

impl ParallelMachine for TwoWaveCopier {
    fn fork(&self) -> Self {
        TwoWaveCopier
    }
    fn absorb(&mut self, _worker: Self) {}
}

#[test]
fn two_waves_both_reach_the_delta_reader() {
    let r = run_fixpoint_with(
        &mut TwoWaveCopier,
        EngineLimits::default(),
        EvalMode::SemiNaive,
    );
    assert_eq!(r.status, Status::Completed);
    assert_eq!(
        r.store.read(&1),
        [7u32, 8].into_iter().collect::<BTreeSet<_>>(),
        "a delta snapshot reset would lose wave one"
    );
}

/// The exact-count scenario, single parallel worker for a deterministic
/// schedule: root, reader (empty first visit), grower 1 (wakes reader),
/// grower 2 (wakes reader again), one justified re-run that sees the
/// combined delta {7, 8}, then one duplicate pop that the epoch gate
/// must absorb. Every join is accounted for — a re-delivered delta that
/// joined again would show up in all three counters.
#[test]
fn redelivered_deltas_do_not_double_join() {
    let r = run_fixpoint_parallel_with(
        &mut TwoWaveCopier,
        1,
        EngineLimits::default(),
        EvalMode::SemiNaive,
    );
    assert_eq!(r.status, Status::Completed);
    assert_eq!(r.wakeups, 2, "each wave wakes the reader once");
    assert_eq!(r.skipped, 1, "the duplicate wakeup dies at the epoch gate");
    assert_eq!(
        r.iterations, 5,
        "root, first reader visit, two growers, one justified re-run"
    );
    // Joins: one per grower, plus the reader's two visits (first visit
    // joins its empty delta, the re-run joins {7, 8}).
    assert_eq!(r.store.join_count(), 4, "exactly four join calls");
    // Ids scanned: 1 + 1 from the growers, 0 + 2 from the reader. A
    // double-joined delta would scan 2 more.
    assert_eq!(r.store.value_join_count(), 4, "exactly four ids scanned");
    // Lattice growth: {7, 8} into address 0 and into address 1, each
    // exactly once.
    assert_eq!(r.delta_facts, 4, "every fact derived exactly once");
    assert_eq!(r.store.read(&1), [7u32, 8].into_iter().collect());
}

/// The same two-wave shape expressed as a real program: under 0CFA both
/// calls land their argument in the *same* address for `x`, one wave
/// per call site, and the halt set must carry both waves.
#[test]
fn scheme_two_wave_address_keeps_both_waves() {
    let src = "(define (f x) x) (let ((a (f 1))) (f 2))";
    let p = cfa::compile(src).unwrap();
    let r = analyze_kcfa(&p, 0, EngineLimits::default());
    assert!(r.metrics.status.is_complete());
    for v in ["1", "2"] {
        assert!(
            r.metrics.halt_values.contains(v),
            "wave {v} lost: {:?}",
            r.metrics.halt_values
        );
    }
}

/// Feedback across a 2-worker split: facts derived on one replica reach
/// the other only through broadcast merges, and the merged rows must
/// land in the receiving replica's delta logs (a merge that bypassed
/// the logs would starve that replica's semi-naive re-runs). The unique
/// fixpoint is the oracle.
#[test]
fn parallel_merge_preserves_deltas_for_pinned_configs() {
    let src = "(define (count n) (if (zero? n) 0 (count (- n 1)))) (count 3)";
    let p = cfa::compile(src).unwrap();
    let seq = run_fixpoint_with(
        &mut KCfaMachine::new(&p, 1),
        EngineLimits::default(),
        EvalMode::SemiNaive,
    );
    for _ in 0..5 {
        let par = run_fixpoint_parallel_with(
            &mut KCfaMachine::new(&p, 1),
            2,
            EngineLimits::default(),
            EvalMode::SemiNaive,
        );
        assert_eq!(par.status, Status::Completed);
        assert_eq!(par.store.fact_count(), seq.store.fact_count());
        assert_eq!(par.config_count(), seq.config_count());
        let seq_store: BTreeSet<String> = seq
            .store
            .iter()
            .map(|(a, set)| format!("{a:?}:{set:?}"))
            .collect();
        let par_store: BTreeSet<String> = par
            .store
            .iter()
            .map(|(a, set)| format!("{a:?}:{set:?}"))
            .collect();
        assert_eq!(seq_store, par_store);
    }
}

/// Semi-naive and full re-evaluation share the deterministic sequential
/// trajectory on the two-wave toy — the narrowed mode differs only in
/// how many ids its joins scan.
#[test]
fn two_wave_modes_agree_on_everything_but_scan_volume() {
    let semi = run_fixpoint_with(
        &mut TwoWaveCopier,
        EngineLimits::default(),
        EvalMode::SemiNaive,
    );
    let full = run_fixpoint_with(
        &mut TwoWaveCopier,
        EngineLimits::default(),
        EvalMode::FullReeval,
    );
    assert_eq!(semi.iterations, full.iterations);
    assert_eq!(semi.delta_facts, full.delta_facts);
    assert_eq!(semi.store.read(&1), full.store.read(&1));
    // On this tiny toy the re-run scans {7, 8} in both modes, so the
    // volumes happen to be equal; the inequality is strict on
    // feedback-heavy workloads (see
    // semi_naive_prop::interp_join_traffic_shrinks_materially).
    assert!(semi.store.value_join_count() <= full.store.value_join_count());
}

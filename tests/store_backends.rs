//! Regression tests for the store backends: the sharded backend's
//! stale-snapshot wakeup protocol, and the store-bytes watermark's
//! snapshot-loss fallback.
//!
//! The differential suites (`engine_differential.rs`,
//! `semi_naive_prop.rs`) prove fixpoint agreement wholesale; the tests
//! here force the *specific* interleavings and degradations those
//! suites only hit probabilistically.

use cfa::analysis::engine::{
    run_fixpoint, run_fixpoint_with, AbstractMachine, EngineLimits, EvalMode, Status, TrackedStore,
};
use cfa::analysis::parallel::ParallelMachine;
use cfa::analysis::shardstore::{run_fixpoint_sharded, run_fixpoint_sharded_with};
use cfa_testsupport::rendezvous::Rendezvous;
use std::sync::atomic::Ordering;

/// A reader whose snapshot goes stale before its dependency lands must
/// still be woken (sharded backend, 2 workers, many interleavings —
/// including both orders of the racing join/registration messages at
/// the owner).
#[test]
fn stale_snapshot_never_misses_a_wakeup() {
    for round in 0..25 {
        let mut machine = Rendezvous::new();
        let r = run_fixpoint_sharded(&mut machine, 2, EngineLimits::default());
        assert_eq!(r.status, Status::Completed, "round {round}");
        assert_eq!(
            r.store.read(&5),
            [42u8].into_iter().collect(),
            "round {round}: the write landed"
        );
        assert_eq!(
            r.store.read(&6),
            [42u8].into_iter().collect(),
            "round {round}: the reader re-ran after its stale snapshot and copied the value"
        );
    }
}

/// The rendezvous machine also converges under the sequential engine
/// (the flags are pre-resolved there: the writer runs to completion
/// before the reader's wakeup re-runs it), pinning the expected
/// fixpoint the sharded assertion above relies on.
#[test]
fn rendezvous_fixpoint_matches_sequential() {
    let mut machine = Rendezvous::new();
    // Sequential order: root, reader (⊥ snapshot; writer_joined is
    // still false, so the await times out fast only if the writer never
    // runs — pre-set the flag to keep the test instant).
    machine.writer_joined.store(true, Ordering::Release);
    machine.reader_in_step.store(true, Ordering::Release);
    let r = run_fixpoint(&mut machine, EngineLimits::default());
    assert_eq!(r.status, Status::Completed);
    assert_eq!(r.store.read(&5), [42u8].into_iter().collect());
    assert_eq!(r.store.read(&6), [42u8].into_iter().collect());
}

/// A feedback machine big enough to cross the engine's 256-pop
/// watermark cadence: configs `1..=n` each grow address 0, and the
/// copier (config 1000) semi-naively forwards **only the delta** of
/// address 0 into address 1. If a mid-run delta-log trim were unsound,
/// the copier would miss the values whose log span was dropped and
/// address 1 would end a strict subset of address 0.
struct Grower {
    writes: u16,
}

impl AbstractMachine for Grower {
    type Config = u16;
    type Addr = u16;
    type Val = u16;

    fn initial(&self) -> u16 {
        0
    }

    fn step(&mut self, c: &u16, s: &mut TrackedStore<'_, u16, u16>, out: &mut Vec<u16>) {
        match *c {
            0 => out.extend([1000, 1]),
            1000 => {
                let d = s.read_with_delta(&0);
                s.join_flow(&1, &d.new);
            }
            c if c <= self.writes => {
                s.join(&0, [c]);
                out.push(c + 1);
            }
            _ => {}
        }
    }
}

impl ParallelMachine for Grower {
    fn fork(&self) -> Self {
        Grower {
            writes: self.writes,
        }
    }
    fn absorb(&mut self, _worker: Self) {}
}

/// Engine-level watermark regression: a tiny `store_bytes_watermark`
/// forces delta-log trims *while the semi-naive copier is mid-flight*;
/// the snapshot-loss fallback must degrade its delta reads to full
/// re-evaluation, reaching the exact fixpoint anyway.
#[test]
fn watermark_trim_triggers_sound_full_reeval() {
    let limits = EngineLimits {
        store_bytes_watermark: Some(1),
        ..EngineLimits::default()
    };
    let r = run_fixpoint_with(&mut Grower { writes: 600 }, limits, EvalMode::SemiNaive);
    assert_eq!(r.status, Status::Completed);
    assert!(
        r.store.delta_log_floor() > 0,
        "the watermark trim must actually fire mid-run"
    );
    assert_eq!(r.store.read(&0), (1u16..=600).collect());
    assert_eq!(
        r.store.read(&1),
        r.store.read(&0),
        "post-trim delta reads degraded to full — no value lost"
    );

    // Control: the same run without a watermark never trims.
    let clean = run_fixpoint_with(
        &mut Grower { writes: 600 },
        EngineLimits::default(),
        EvalMode::SemiNaive,
    );
    assert_eq!(clean.store.delta_log_floor(), 0);
    assert_eq!(clean.store.read(&1), r.store.read(&1));
}

/// The watermark is honored by both parallel backends too: each
/// replica (replicated) or each shard owner (sharded) trims its share,
/// and the fixpoint is unaffected.
#[test]
fn watermark_is_sound_under_both_parallel_backends() {
    let limits = EngineLimits {
        store_bytes_watermark: Some(1),
        ..EngineLimits::default()
    };
    let expect = run_fixpoint(&mut Grower { writes: 600 }, EngineLimits::default());
    for threads in [2, 3] {
        let rep = cfa::analysis::parallel::run_fixpoint_parallel_with(
            &mut Grower { writes: 600 },
            threads,
            limits.clone(),
            EvalMode::SemiNaive,
        );
        assert_eq!(
            rep.status,
            Status::Completed,
            "replicated threads={threads}"
        );
        assert_eq!(rep.store.read(&0), expect.store.read(&0));
        assert_eq!(rep.store.read(&1), expect.store.read(&1));

        let sh = run_fixpoint_sharded_with(
            &mut Grower { writes: 600 },
            threads,
            limits.clone(),
            EvalMode::SemiNaive,
        );
        assert_eq!(sh.status, Status::Completed, "sharded threads={threads}");
        assert_eq!(sh.store.read(&0), expect.store.read(&0));
        assert_eq!(sh.store.read(&1), expect.store.read(&1));
    }
}

/// One evaluation that writes 32 rows: the address-id hash spreads
/// those rows over every shard, so whichever single worker evaluates
/// the config *must* route joins to owners it is not — deterministic
/// message traffic, independent of scheduling.
struct WideWriter;

impl AbstractMachine for WideWriter {
    type Config = u8;
    type Addr = u8;
    type Val = u8;

    fn initial(&self) -> u8 {
        0
    }

    fn step(&mut self, c: &u8, s: &mut TrackedStore<'_, u8, u8>, out: &mut Vec<u8>) {
        if *c == 0 {
            for a in 0..32u8 {
                s.join(&a, [1u8]);
            }
            out.push(1);
        } else {
            let _ = s.read(&0);
        }
    }
}

impl ParallelMachine for WideWriter {
    fn fork(&self) -> Self {
        WideWriter
    }
    fn absorb(&mut self, _worker: Self) {}
}

/// Scheduler observability: the counters land in `FixpointResult` and
/// are plausible — a sequential run reports resident bytes only, a
/// sharded run at several workers reports message traffic.
#[test]
fn sched_stats_are_populated() {
    let seq = run_fixpoint(&mut Grower { writes: 100 }, EngineLimits::default());
    assert!(seq.sched.store_resident_bytes > 0);
    assert_eq!(seq.sched.steals, 0);
    assert_eq!(seq.sched.inbox_batches, 0);

    let sh = run_fixpoint_sharded(&mut WideWriter, 3, EngineLimits::default());
    assert_eq!(sh.status, Status::Completed);
    assert!(sh.sched.store_resident_bytes > 0);
    assert!(
        sh.sched.inbox_batches > 0,
        "32 rows span all 3 owners, so the writer must route joins"
    );
    assert!(sh.sched.max_inbox_depth >= 1);
    for a in 0..32u8 {
        assert_eq!(sh.store.read(&a), [1u8].into_iter().collect(), "row {a}");
    }
}

//! Cross-validation: three independent implementations of 0CFA-level
//! flow must agree (up to their documented precision differences).
//!
//! 1. worklist k-CFA with k = 0 (reachability + branch pruning),
//! 2. constraint-based 0CFA (whole-program, no pruning),
//! 3. naive per-state-store search with k = 0.
//!
//! Invariants: (1) ⊑ (2) on variable flows (the constraint system
//! over-approximates the pruning analysis), and the naive search's halt
//! values ⊑ (1)'s.

use cfa::analysis::constraints::{solve_zerocfa, Val0};
use cfa::analysis::domain::AVal;
use cfa::analysis::kcfa::analyze_kcfa;
use cfa::analysis::naive::{analyze_kcfa_naive, NaiveLimits};
use cfa::analysis::EngineLimits;
use cfa::concrete::Slot;

/// Projects a k-CFA store value to the context-insensitive domain.
fn project(v: &cfa::analysis::kcfa::ValK) -> Val0 {
    match v {
        AVal::Basic(b) => Val0::Basic(*b),
        AVal::Clo { lam, .. } => Val0::Lam(*lam),
        AVal::Pair { car, .. } => match car.slot {
            Slot::Car(l) => Val0::Pair(l),
            _ => unreachable!("pair car address must be a Car slot"),
        },
        AVal::Tid { .. } => Val0::Tid,
        AVal::RetK { .. } => Val0::RetK,
        AVal::Atom { cell } => match cell.slot {
            Slot::Atom(l) => Val0::Atom(l),
            _ => unreachable!("atom cell address must be an Atom slot"),
        },
    }
}

/// The shared cross-suite corpus (suite + worst-case + figures +
/// random band) — see `cfa_testsupport::scheme_corpus`.
fn programs() -> Vec<String> {
    cfa_testsupport::scheme_corpus()
}

#[test]
fn constraint_zerocfa_over_approximates_worklist_k0() {
    for src in programs() {
        let program = cfa::compile(&src).unwrap();
        let k0 = analyze_kcfa(&program, 0, EngineLimits::default());
        let z = solve_zerocfa(&program);
        for (addr, values) in k0.fixpoint.store.iter() {
            let Slot::Var(v) = addr.slot else { continue };
            let flow = z.var_flow(v);
            for value in values {
                let projected = project(&value);
                assert!(
                    flow.contains(&projected),
                    "{src}\nvariable {}: {projected:?} in k=0 but not in constraint flow {flow:?}",
                    program.name(v)
                );
            }
        }
        // Halt coverage too.
        for v in &k0.halt_values {
            assert!(
                z.halt_flow().contains(&project(v)),
                "{src}\nhalt {v:?} missing from constraint halt flow"
            );
        }
    }
}

#[test]
fn datalog_zerocfa_equals_constraint_solver_everywhere() {
    // Two declarative formulations — the hand-rolled set-constraint
    // solver and the Datalog engine — must compute the *same* minimal
    // model on every workload.
    use cfa::analysis::zerocfa_datalog::solve_zerocfa_datalog;
    for src in programs() {
        let program = cfa::compile(&src).unwrap();
        let solver = solve_zerocfa(&program);
        let datalog = solve_zerocfa_datalog(&program);
        for v in program.bound_vars() {
            assert_eq!(
                solver.var_flow(v),
                datalog.var_flow(v),
                "{src}\nvariable {}: solver and Datalog disagree",
                program.name(v)
            );
        }
        assert_eq!(
            solver.halt_flow(),
            datalog.halt_flow(),
            "{src}: halt flows disagree"
        );
    }
}

#[test]
fn datalog_zerocfa_scales_polynomially_on_worst_case() {
    use cfa::analysis::zerocfa_datalog::solve_zerocfa_datalog;
    let mut previous = 0usize;
    for n in [4usize, 8, 16, 32] {
        let program = cfa::compile(&cfa::workloads::worst_case_source(n)).unwrap();
        let d = solve_zerocfa_datalog(&program);
        let facts = d.total_facts;
        if previous > 0 {
            assert!(
                facts <= previous * 6,
                "n={n}: fact growth {previous} -> {facts} looks superpolynomial"
            );
        }
        previous = facts;
    }
}

#[test]
fn naive_k0_halts_subset_of_worklist_k0() {
    for src in programs().into_iter().take(12) {
        let program = cfa::compile(&src).unwrap();
        let k0 = analyze_kcfa(&program, 0, EngineLimits::default());
        let naive = analyze_kcfa_naive(
            &program,
            0,
            NaiveLimits {
                max_states: 100_000,
                time_budget: Some(std::time::Duration::from_secs(10)),
            },
        );
        assert!(
            naive.halt_values.is_subset(&k0.metrics.halt_values),
            "{src}\nnaive {:?} ⊄ worklist {:?}",
            naive.halt_values,
            k0.metrics.halt_values
        );
    }
}

#[test]
fn constraint_solver_scales_polynomially_on_worst_case() {
    // The constraint system is the "Datalog" road: it must stay
    // polynomial on the family that kills shared-environment k=1.
    let mut previous = 0usize;
    for n in [4usize, 8, 16, 32] {
        let program = cfa::compile(&cfa::workloads::worst_case_source(n)).unwrap();
        let z = solve_zerocfa(&program);
        let facts = z.fact_count();
        if previous > 0 {
            assert!(
                facts <= previous * 6,
                "n={n}: fact growth {previous} -> {facts} looks superpolynomial"
            );
        }
        previous = facts;
    }
}

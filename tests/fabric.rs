//! Fabric-level regression tests: both store backends run through the
//! one generic driver (`cfa_core::fabric`), so the scheduling
//! invariants must hold *identically* for both — this file pins them,
//! guarding against backend-specific drift returning.
//!
//! The load-bearing counter identity, asserted on every completed run:
//!
//! ```text
//! iterations + skipped == config_count + wakeups
//! ```
//!
//! Every fresh configuration is deduplicated once and popped exactly
//! once (`config_count` pops), every scheduled wakeup is popped exactly
//! once (`wakeups` pops), and every pop either evaluates (`iterations`)
//! or dies at the epoch gate (`skipped`). A lost wakeup breaks the
//! identity from the right (a scheduled wake never popped would also
//! deadlock termination — the fabric's pending counter is asserted
//! zero on completion inside `Fabric::finish`); a double-delivered or
//! phantom pop breaks it from the left.

use cfa::analysis::engine::{AbstractMachine, EngineLimits, EvalMode, Status, TrackedStore};
use cfa::analysis::fabric::WakeBatching;
use cfa::analysis::parallel::{
    run_fixpoint_parallel_on, ParallelMachine, Replicated, Sharded, StoreBackend,
};
use cfa_testsupport::rendezvous::Rendezvous;

/// A feedback machine whose fixpoint needs many cross-config wakeups —
/// dense scheduling traffic without forced interleavings.
struct Feedback;

impl AbstractMachine for Feedback {
    type Config = u8;
    type Addr = u8;
    type Val = u8;

    fn initial(&self) -> u8 {
        0
    }

    fn step(&mut self, c: &u8, s: &mut TrackedStore<'_, u8, u8>, out: &mut Vec<u8>) {
        if *c == 0 {
            s.join(&0, [1u8]);
            out.extend([1, 2, 3]);
        } else {
            let seen = s.read(&(*c % 3));
            let next: Vec<u8> = seen
                .iter()
                .map(|id| *s.val(id))
                .filter(|&v| v < 60)
                .map(|v| v + 1)
                .collect();
            s.join(&((*c + 1) % 3), next);
        }
    }
}

impl ParallelMachine for Feedback {
    fn fork(&self) -> Self {
        Feedback
    }
    fn absorb(&mut self, _worker: Self) {}
}

/// Asserts the fabric counter identity on a completed run.
fn assert_sched_identity<C, A, V>(r: &cfa::analysis::engine::FixpointResult<C, A, V>, label: &str) {
    assert_eq!(r.status, Status::Completed, "{label}");
    assert_eq!(
        r.iterations + r.skipped,
        r.config_count() as u64 + r.wakeups,
        "{label}: every fresh config and every scheduled wakeup must be \
         popped exactly once (iterations {} + skipped {} vs configs {} + \
         wakeups {})",
        r.iterations,
        r.skipped,
        r.config_count(),
        r.wakeups
    );
}

fn rendezvous_through<B: StoreBackend>(batching: WakeBatching) {
    let limits = EngineLimits {
        wake_batching: batching,
        ..EngineLimits::default()
    };
    for round in 0..10 {
        let mut machine = Rendezvous::new();
        let r =
            run_fixpoint_parallel_on::<B, _>(&mut machine, 2, limits.clone(), EvalMode::SemiNaive);
        let label = format!("{} {batching:?} round {round}", B::NAME);
        assert_sched_identity(&r, &label);
        assert_eq!(
            r.store.read(&5),
            [42u8].into_iter().collect(),
            "{label}: the write landed"
        );
        assert_eq!(
            r.store.read(&6),
            [42u8].into_iter().collect(),
            "{label}: the reader re-ran after its stale snapshot"
        );
    }
}

/// The forced stale-snapshot interleaving, through the unified driver,
/// on both backends and both drain policies: no wakeup may be lost and
/// the counter identity must hold identically.
#[test]
fn rendezvous_sched_invariants_hold_for_both_backends() {
    for batching in [WakeBatching::Adaptive, WakeBatching::DrainAll] {
        rendezvous_through::<Replicated>(batching);
        rendezvous_through::<Sharded>(batching);
    }
}

/// Dense wakeup traffic through the unified driver: the counter
/// identity and the fixpoint hold for both backends across thread
/// counts, modes, and drain policies.
#[test]
fn feedback_sched_invariants_hold_for_both_backends() {
    let expect = cfa::analysis::engine::run_fixpoint(&mut Feedback, EngineLimits::default());
    for batching in [WakeBatching::Adaptive, WakeBatching::DrainAll] {
        let limits = EngineLimits {
            wake_batching: batching,
            ..EngineLimits::default()
        };
        for threads in [1, 2, 4] {
            for mode in [EvalMode::SemiNaive, EvalMode::FullReeval] {
                let rep = run_fixpoint_parallel_on::<Replicated, _>(
                    &mut Feedback,
                    threads,
                    limits.clone(),
                    mode,
                );
                let sh = run_fixpoint_parallel_on::<Sharded, _>(
                    &mut Feedback,
                    threads,
                    limits.clone(),
                    mode,
                );
                for (r, name) in [(&rep, "replicated"), (&sh, "sharded")] {
                    let label = format!("{name} {batching:?} threads={threads} {mode:?}");
                    assert_sched_identity(r, &label);
                    for a in 0..3u8 {
                        assert_eq!(
                            r.store.read(&a),
                            expect.store.read(&a),
                            "{label}: fixpoint agrees with sequential"
                        );
                    }
                    assert_eq!(r.config_count(), expect.config_count(), "{label}");
                }
            }
        }
    }
}

/// The sequential engine satisfies the same identity (its wakeups are
/// exact, so `skipped` is zero) — the invariant is engine-wide, not a
/// parallel artifact.
#[test]
fn sequential_engine_satisfies_the_identity() {
    let r = cfa::analysis::engine::run_fixpoint(&mut Feedback, EngineLimits::default());
    assert_eq!(r.status, Status::Completed);
    assert_eq!(r.skipped, 0, "sequential wakeups are exact");
    assert_eq!(r.iterations, r.config_count() as u64 + r.wakeups);
}

//! Featherweight Java integration: concrete runs vs the abstract
//! analysis, across policies and the OO paradox program family.

use cfa::analysis::EngineLimits;
use cfa::fj::{analyze_fj, parse_fj, run_fj, run_fj_traced, FjAnalysisOptions, FjLimits};

/// The abstract halt classes must include the concrete result class.
#[test]
fn abstract_halt_covers_concrete_class() {
    let sources = [
        cfa::workloads::oo_program(2, 3),
        cfa::workloads::oo_program(4, 1),
        DISPATCH.to_owned(),
    ];
    for src in &sources {
        let program = parse_fj(src).unwrap();
        let run = run_fj(&program, FjLimits::default());
        let concrete = run.halted().expect("program halts").to_owned();
        for options in [
            FjAnalysisOptions::paper(0),
            FjAnalysisOptions::paper(1),
            FjAnalysisOptions::oo(0),
            FjAnalysisOptions::oo(1),
            FjAnalysisOptions::oo(2),
        ] {
            let r = analyze_fj(&program, options, EngineLimits::default());
            let names: Vec<&str> = r
                .metrics
                .halt_classes
                .iter()
                .map(|&c| program.name(program.class(c).name))
                .collect();
            assert!(
                names.contains(&concrete.as_str()),
                "{options:?}: {concrete} not in {names:?}"
            );
        }
    }
}

const DISPATCH: &str = "
    class A extends Object {
      A() { super(); }
      Object who() { Object o; o = new A(); return o; }
    }
    class B extends A {
      B() { super(); }
      Object who() { Object o; o = new B(); return o; }
    }
    class Main extends Object {
      Main() { super(); }
      A choose(A first, A second) { return second; }
      Object main() {
        A x;
        x = this.choose(new A(), new B());
        A y;
        y = this.choose(new B(), new A());
        return x.who();
      }
    }";

/// Context sensitivity recovers dispatch precision that 0CFA loses.
#[test]
fn k1_devirtualizes_what_k0_cannot() {
    let program = parse_fj(DISPATCH).unwrap();
    let k0 = analyze_fj(&program, FjAnalysisOptions::oo(0), EngineLimits::default());
    let k1 = analyze_fj(&program, FjAnalysisOptions::oo(1), EngineLimits::default());
    // 0CFA merges the two choose() calls, so x.who() sees A and B.
    let k0_max = k0
        .metrics
        .call_targets
        .values()
        .map(|t| t.len())
        .max()
        .unwrap();
    let k1_max = k1
        .metrics
        .call_targets
        .values()
        .map(|t| t.len())
        .max()
        .unwrap();
    assert_eq!(k0_max, 2, "0CFA must be polymorphic at x.who()");
    assert_eq!(k1_max, 1, "1-CFA must devirtualize every site");
}

/// The concrete machine and the analysis agree on reachable methods.
#[test]
fn reachable_methods_cover_concrete_trace() {
    let src = cfa::workloads::oo_program(3, 3);
    let program = parse_fj(&src).unwrap();
    let run = run_fj_traced(&program, FjLimits::default(), true);
    let r = analyze_fj(
        &program,
        FjAnalysisOptions::paper(1),
        EngineLimits::default(),
    );
    use std::collections::BTreeSet;
    let concrete_methods: BTreeSet<_> = run.trace.iter().map(|v| v.stmt.method).collect();
    let abstract_methods: BTreeSet<_> = r.fixpoint.configs.iter().map(|c| c.stmt.method).collect();
    assert!(
        concrete_methods.is_subset(&abstract_methods),
        "concrete {concrete_methods:?} ⊄ abstract {abstract_methods:?}"
    );
}

/// Both tick policies terminate and agree on halt classes for the
/// paradox family (they differ only in context granularity).
#[test]
fn policies_agree_on_halt_classes() {
    for (n, m) in [(2, 2), (3, 5)] {
        let src = cfa::workloads::oo_program(n, m);
        let program = parse_fj(&src).unwrap();
        let paper = analyze_fj(
            &program,
            FjAnalysisOptions::paper(1),
            EngineLimits::default(),
        );
        let oo = analyze_fj(&program, FjAnalysisOptions::oo(1), EngineLimits::default());
        assert!(paper.metrics.status.is_complete());
        assert!(oo.metrics.status.is_complete());
        assert_eq!(
            paper.metrics.halt_classes, oo.metrics.halt_classes,
            "N={n} M={m}"
        );
    }
}

/// Deeper k never loses precision (call-target inclusion) on the
/// dispatch program.
#[test]
fn deeper_k_refines_call_targets() {
    let program = parse_fj(DISPATCH).unwrap();
    let k0 = analyze_fj(&program, FjAnalysisOptions::oo(0), EngineLimits::default());
    let k2 = analyze_fj(&program, FjAnalysisOptions::oo(2), EngineLimits::default());
    for (site, targets) in &k2.metrics.call_targets {
        if let Some(coarse) = k0.metrics.call_targets.get(site) {
            assert!(targets.is_subset(coarse), "site {site:?}");
        }
    }
}

/// The per-statement policy keeps the paradox program polynomial too
/// (§4.4's collapse does not depend on the §4.5 variant).
#[test]
fn paper_policy_is_polynomial_on_paradox_family() {
    let mut previous = 0usize;
    for (n, m) in [(2, 2), (4, 4), (8, 8)] {
        let src = cfa::workloads::oo_program(n, m);
        let program = parse_fj(&src).unwrap();
        let r = analyze_fj(
            &program,
            FjAnalysisOptions::paper(1),
            EngineLimits::default(),
        );
        assert!(r.metrics.status.is_complete());
        let configs = r.metrics.config_count;
        // Growth must be at most ~linear in program size between steps
        // (multiplicative factor well under the 4x size increase).
        if previous > 0 {
            assert!(
                configs <= previous * 8,
                "config growth {previous} -> {configs} looks superpolynomial"
            );
        }
        previous = configs;
    }
}

//! Cross-validation: the Datalog encoding of OO k-CFA must agree
//! *exactly* with the worklist abstract machine.
//!
//! The paper's §1 argues OO k-CFA is polynomial because it is expressible
//! in Datalog. `cfa_fj::datalog` is that expression; this test is the
//! machine-checked version of the claim "it is the same analysis": for
//! the conventional OO variant (`TickPolicy::OnInvocation`, §4.5) the two
//! implementations must produce identical call graphs, identical
//! points-to sets per abstract address, and identical halt classes — on
//! handwritten programs, the Figure 1 paradox programs, and randomly
//! generated FJ programs.

use cfa::analysis::EngineLimits;
use cfa::fj::kcfa::{analyze_fj, FjAVal, FjAnalysisOptions, TickPolicy};
use cfa::fj::{analyze_fj_datalog, parse_fj, FjDatalogOptions, FjProgram};
use cfa::syntax::cps::Label;
use cfa::syntax::intern::Symbol;
use cfa::workloads::figures::oo_program;
use cfa::workloads::gen_fj::{random_fj_program, FjGenConfig};
use std::collections::{BTreeMap, BTreeSet};

type PointsTo = BTreeMap<(Symbol, Vec<Label>), BTreeSet<cfa::fj::ClassId>>;

/// Projects the machine's store onto the Datalog `vp` domain: abstract
/// addresses at `Var` slots (excluding `this`, which the machine never
/// allocates an address for) mapped to the classes of their object
/// values.
fn machine_points_to(program: &FjProgram, result: &cfa::fj::kcfa::FjResult) -> PointsTo {
    let this_sym = program.interner().lookup("this").unwrap();
    let mut out: PointsTo = BTreeMap::new();
    for (addr, values) in result.fixpoint.store.iter() {
        let cfa::fj::concrete::FjSlot::Var(sym) = addr.slot else {
            continue;
        };
        if sym == this_sym {
            continue;
        }
        let classes: BTreeSet<_> = values
            .iter()
            .filter_map(|val| match val {
                FjAVal::Obj { class, .. } => Some(*class),
                _ => None,
            })
            .collect();
        if !classes.is_empty() {
            out.entry((sym, addr.time.labels().to_vec()))
                .or_default()
                .extend(classes);
        }
    }
    out
}

/// Asserts exact agreement between the machine and the Datalog encoding
/// at sensitivity `k`.
fn assert_agreement(src: &str, k: usize, what: &str) {
    let program = parse_fj(src).unwrap_or_else(|e| panic!("{what}: parse error: {e}"));
    let machine = analyze_fj(
        &program,
        FjAnalysisOptions {
            k,
            policy: TickPolicy::OnInvocation,
            cast_filtering: false,
        },
        EngineLimits::default(),
    );
    assert!(
        machine.metrics.status.is_complete(),
        "{what}: machine hit limits"
    );
    let datalog = analyze_fj_datalog(&program, FjDatalogOptions::sensitive(k));

    // Call graphs agree.
    assert_eq!(
        machine.metrics.call_targets, datalog.call_targets,
        "{what} (k={k}): call graphs differ"
    );
    // Halt classes agree.
    assert_eq!(
        machine.metrics.halt_classes, datalog.halt_classes,
        "{what} (k={k}): halt classes differ"
    );
    // Points-to sets agree address for address.
    let machine_pt = machine_points_to(&program, &machine);
    assert_eq!(
        machine_pt, datalog.points_to,
        "{what} (k={k}): points-to sets differ"
    );
}

#[test]
fn dispatch_program_agrees() {
    let src = "
        class A extends Object {
          A() { super(); }
          Object who() { Object o; o = new A(); return o; }
        }
        class B extends A {
          B() { super(); }
          Object who() { Object o; o = new B(); return o; }
        }
        class Main extends Object {
          Main() { super(); }
          Object main() {
            A x;
            x = new B();
            return x.who();
          }
        }";
    assert_agreement(src, 0, "dispatch");
    assert_agreement(src, 1, "dispatch");
}

#[test]
fn field_flow_program_agrees() {
    let src = "
        class Box extends Object {
          Object item;
          Box(Object item0) { super(); this.item = item0; }
          Object get() { return this.item; }
        }
        class Marker extends Object { Marker() { super(); } }
        class Other extends Object { Other() { super(); } }
        class Main extends Object {
          Main() { super(); }
          Object main() {
            Box b;
            b = new Box(new Marker());
            Box b2;
            b2 = new Box(new Other());
            return b.get();
          }
        }";
    assert_agreement(src, 0, "field flow");
    assert_agreement(src, 1, "field flow");
}

#[test]
fn polymorphic_merging_agrees() {
    let src = "
        class A extends Object {
          A() { super(); }
          Object who() { Object o; o = new A(); return o; }
        }
        class B extends A {
          B() { super(); }
          Object who() { Object o; o = new B(); return o; }
        }
        class Main extends Object {
          Main() { super(); }
          A pick(A one, A two) { return two; }
          Object main() {
            A x;
            x = this.pick(new A(), new B());
            A y;
            y = this.pick(new B(), new A());
            return x.who();
          }
        }";
    assert_agreement(src, 0, "polymorphic");
    assert_agreement(src, 1, "polymorphic");
}

#[test]
fn recursion_agrees() {
    let src = "
        class Nat extends Object {
          Nat() { super(); }
          Nat next(Nat n) { return this.next(n); }
        }
        class Main extends Object {
          Main() { super(); }
          Object main() {
            Nat n;
            n = new Nat();
            Nat m;
            m = n.next(n);
            return m;
          }
        }";
    assert_agreement(src, 0, "recursion");
    assert_agreement(src, 1, "recursion");
}

#[test]
fn figure1_paradox_programs_agree() {
    for (n, m) in [(1, 1), (2, 3), (4, 4)] {
        let src = oo_program(n, m);
        assert_agreement(&src, 1, &format!("oo_program({n},{m})"));
    }
}

#[test]
fn random_programs_agree_insensitively() {
    for seed in 0..24 {
        let src = random_fj_program(seed, FjGenConfig::default());
        assert_agreement(&src, 0, &format!("random seed {seed}"));
    }
}

#[test]
fn random_programs_agree_at_k1() {
    for seed in 0..24 {
        let src = random_fj_program(
            seed,
            FjGenConfig {
                classes: 3,
                main_statements: 6,
            },
        );
        assert_agreement(&src, 1, &format!("random seed {seed}"));
    }
}

#[test]
fn larger_random_programs_agree_at_k1() {
    for seed in [100, 101, 102, 103] {
        let src = random_fj_program(
            seed,
            FjGenConfig {
                classes: 6,
                main_statements: 12,
            },
        );
        assert_agreement(&src, 1, &format!("random seed {seed}"));
    }
}

#[test]
fn datalog_predicts_concrete_halt_classes() {
    // Soundness through the third implementation: whatever class the
    // concrete machine actually returns must be in the Datalog halt set.
    use cfa::fj::{run_fj, FjLimits};
    for seed in 40..64 {
        let src = random_fj_program(seed, FjGenConfig::default());
        let program = parse_fj(&src).unwrap();
        let run = run_fj(&program, FjLimits::default());
        let Some(halted) = run.halted() else { continue };
        let class_name = halted.split('@').next().unwrap().to_owned();
        for k in [0, 1] {
            let d = analyze_fj_datalog(&program, FjDatalogOptions::sensitive(k));
            let predicted: Vec<&str> = d
                .halt_classes
                .iter()
                .map(|&c| program.name(program.class(c).name))
                .collect();
            assert!(
                predicted.contains(&class_name.as_str()),
                "seed {seed} k={k}: concrete {class_name} not in {predicted:?}"
            );
        }
    }
}

//! Integration tests for the OO benchmark suite: every program parses,
//! terminates concretely, completes under every analysis, agrees with
//! the Datalog implementation, and exhibits the expected precision
//! ordering.

use cfa::analysis::EngineLimits;
use cfa::fj::{
    analyze_fj, analyze_fj_datalog, parse_fj, run_fj, FjAnalysisOptions, FjDatalogOptions, FjLimits,
};
use cfa::workloads::suite_fj::fj_suite;

#[test]
fn all_programs_parse_and_run_concretely() {
    for prog in fj_suite() {
        let p = parse_fj(prog.source).unwrap_or_else(|e| panic!("{}: {e}", prog.name));
        let run = run_fj(&p, FjLimits::default());
        assert!(
            run.halted().is_some(),
            "{}: concrete run did not halt: {:?}",
            prog.name,
            run.outcome
        );
    }
}

#[test]
fn all_programs_complete_under_every_analysis() {
    for prog in fj_suite() {
        let p = parse_fj(prog.source).unwrap();
        for options in [
            FjAnalysisOptions::oo(0),
            FjAnalysisOptions::oo(1),
            FjAnalysisOptions::oo(2),
            FjAnalysisOptions::paper(0),
            FjAnalysisOptions::paper(1),
        ] {
            let r = analyze_fj(&p, options, EngineLimits::default());
            assert!(
                r.metrics.status.is_complete(),
                "{}: {:?} hit limits",
                prog.name,
                options
            );
            assert!(
                r.metrics.reachable_calls > 0,
                "{}: nothing analyzed",
                prog.name
            );
        }
    }
}

#[test]
fn concrete_halt_class_is_predicted_by_every_analysis() {
    for prog in fj_suite() {
        let p = parse_fj(prog.source).unwrap();
        let run = run_fj(&p, FjLimits::default());
        let halted = run.halted().expect("suite programs halt");
        let class_name = halted.split('@').next().unwrap().to_owned();
        for k in [0, 1] {
            let r = analyze_fj(&p, FjAnalysisOptions::oo(k), EngineLimits::default());
            let predicted: Vec<&str> = r
                .metrics
                .halt_classes
                .iter()
                .map(|&c| p.name(p.class(c).name))
                .collect();
            assert!(
                predicted.contains(&class_name.as_str()),
                "{} k={k}: concrete {class_name} not predicted {predicted:?}",
                prog.name
            );
        }
    }
}

#[test]
fn datalog_agrees_on_the_whole_suite() {
    for prog in fj_suite() {
        let p = parse_fj(prog.source).unwrap();
        for k in [0, 1, 2] {
            let machine = analyze_fj(&p, FjAnalysisOptions::oo(k), EngineLimits::default());
            let datalog = analyze_fj_datalog(&p, FjDatalogOptions::sensitive(k));
            assert_eq!(
                machine.metrics.call_targets, datalog.call_targets,
                "{} k={k}: call graphs differ",
                prog.name
            );
            assert_eq!(
                machine.metrics.halt_classes, datalog.halt_classes,
                "{} k={k}: halt classes differ",
                prog.name
            );
        }
    }
}

#[test]
fn context_never_hurts_devirtualization() {
    for prog in fj_suite() {
        let p = parse_fj(prog.source).unwrap();
        let k0 = analyze_fj(&p, FjAnalysisOptions::oo(0), EngineLimits::default());
        let k1 = analyze_fj(&p, FjAnalysisOptions::oo(1), EngineLimits::default());
        let ratio = |r: &cfa::fj::FjResult| {
            r.metrics.monomorphic_calls as f64 / r.metrics.reachable_calls.max(1) as f64
        };
        assert!(
            ratio(&k1) >= ratio(&k0) - 1e-9,
            "{}: k=1 devirtualizes less than k=0 ({} < {})",
            prog.name,
            ratio(&k1),
            ratio(&k0)
        );
    }
}

#[test]
fn identity_helper_needs_context_for_devirtualization() {
    // The OO analog of the paper's §6 identity example: an `id` helper
    // merges its two receivers at k=0 (making the dispatch site
    // polymorphic), while k=1 keeps them apart per call site.
    let src = "
        class A extends Object {
          A() { super(); }
          Object who() { Object oa; oa = new A(); return oa; }
        }
        class B extends A {
          B() { super(); }
          Object who() { Object ob; ob = new B(); return ob; }
        }
        class Main extends Object {
          Main() { super(); }
          A id(A a) { return a; }
          Object main() {
            A x;
            x = this.id(new A());
            A y;
            y = this.id(new B());
            return x.who();
          }
        }";
    let p = parse_fj(src).unwrap();
    let k0 = analyze_fj(&p, FjAnalysisOptions::oo(0), EngineLimits::default());
    let k1 = analyze_fj(&p, FjAnalysisOptions::oo(1), EngineLimits::default());
    assert!(
        k1.metrics.monomorphic_calls > k0.metrics.monomorphic_calls,
        "k=1 {} !> k=0 {}",
        k1.metrics.monomorphic_calls,
        k0.metrics.monomorphic_calls
    );
    // And the halt set is correspondingly tighter.
    assert!(k1.metrics.halt_classes.len() < k0.metrics.halt_classes.len());
}

//! Golden snapshot suite: the cross-*version* regression net.
//!
//! Every workload-suite program is normalized through the full engine
//! matrix ([`cfa_testsupport::canon_snapshot_matrix`] asserts all seven
//! engine configurations serialize byte-identically) and the agreed
//! normal form must match the artifact committed under `tests/golden/`
//! — so a semantics change shows up as a reviewable diff of a checked
//! in file, not just a failing in-process assertion. The race
//! detector's JSON reports get the same treatment.
//!
//! Regenerate after an intentional semantics change with:
//!
//! ```text
//! CFA_BLESS=1 cargo test --test snapshots
//! ```

use cfa::analysis::engine::{run_fixpoint_with, EngineLimits, EvalMode};
use cfa::analysis::flatcfa::{FlatCfaMachine, FlatPolicy};
use cfa::analysis::kcfa::KCfaMachine;
use cfa::analysis::races::{races_kcfa, races_mcfa};
use cfa::Analysis;
use cfa_testsupport::{
    canon_snapshot_matrix, check_golden, golden_racy_programs, golden_slug,
    golden_synchronized_programs,
};

/// The analyses pinned per program: one per machine family. `scm2c` is
/// the exception — its exponential shared-environment store makes the
/// k=1 normal form a >13 MB artifact, so the k-CFA golden pins k=0
/// there (the corpus runner still sweeps it at k=1; only the
/// committed-artifact depth is reduced).
fn pinned_analyses(name: &str) -> [Analysis; 3] {
    let k = if name == "scm2c" { 0 } else { 1 };
    [
        Analysis::KCfa { k },
        Analysis::MCfa { m: 1 },
        Analysis::PolyKCfa { k: 1 },
    ]
}

#[test]
fn suite_normal_forms_match_committed_goldens() {
    for prog in cfa::workloads::suite() {
        let p = cfa::compile(prog.source).expect("suite program compiles");
        for analysis in pinned_analyses(prog.name) {
            let snapshot = canon_snapshot_matrix(&p, prog.name, analysis);
            check_golden(
                &format!(
                    "snapshots/{}--{}.json",
                    golden_slug(prog.name),
                    golden_slug(&analysis.short_name())
                ),
                &snapshot.to_json(),
            );
        }
    }
}

#[test]
fn concurrent_normal_forms_match_committed_goldens() {
    for &(name, src) in golden_racy_programs()
        .iter()
        .chain(golden_synchronized_programs())
    {
        let p = cfa::compile(src).expect("golden program compiles");
        for analysis in pinned_analyses(name) {
            let snapshot = canon_snapshot_matrix(&p, name, analysis);
            check_golden(
                &format!(
                    "snapshots/{}--{}.json",
                    golden_slug(name),
                    golden_slug(&analysis.short_name())
                ),
                &snapshot.to_json(),
            );
        }
    }
}

#[test]
fn race_reports_match_committed_goldens() {
    // `races_golden.rs` proves the reports are engine-independent, so
    // one sequential run per analysis pins the artifact.
    for &(name, src) in golden_racy_programs()
        .iter()
        .chain(golden_synchronized_programs())
    {
        let p = cfa::compile(src).expect("golden program compiles");
        let r = run_fixpoint_with(
            &mut KCfaMachine::new(&p, 1),
            EngineLimits::default(),
            EvalMode::SemiNaive,
        );
        assert!(r.status.is_complete(), "{name}: k=1 incomplete");
        check_golden(
            &format!("races/{}--k-1.json", golden_slug(name)),
            &races_kcfa(&p, 1, &r).render_json(),
        );
        let r = run_fixpoint_with(
            &mut FlatCfaMachine::new(&p, 1, FlatPolicy::TopMFrames),
            EngineLimits::default(),
            EvalMode::SemiNaive,
        );
        assert!(r.status.is_complete(), "{name}: m=1 incomplete");
        check_golden(
            &format!("races/{}--m-1.json", golden_slug(name)),
            &races_mcfa(&p, 1, &r).render_json(),
        );
    }
}

//! Golden race-detector suite (the acceptance gate for the static race
//! client):
//!
//! * every seeded race in the racy programs is reported — zero false
//!   negatives;
//! * the join-synchronized and CAS-guarded programs produce zero
//!   reports;
//! * the report is byte-identical no matter which engine computed the
//!   fixpoint — sequential, replicated-parallel, and sharded-parallel,
//!   each in both evaluation modes (the parallel side honors
//!   `CFA_STORE_BACKEND`, so the CI matrix gates each backend in
//!   isolation).

use cfa::analysis::engine::{run_fixpoint_with, EngineLimits, EvalMode};
use cfa::analysis::flatcfa::{FlatCfaMachine, FlatPolicy};
use cfa::analysis::kcfa::KCfaMachine;
use cfa::analysis::races::{races_kcfa, races_mcfa, RaceReport};
use cfa::analysis::{run_fixpoint_parallel_on, Replicated, Sharded};
use cfa_testsupport::{
    backend_selection, golden_racy_programs, golden_synchronized_programs, PAR_THREADS,
};

/// Which evaluation modes to sweep. `CFA_EVAL_MODE` narrows the run to
/// one mode (`semi-naive` or `full-reeval`) so the CI race matrix can
/// pin backend × mode per leg; anything else (including unset) means
/// both.
fn selected_modes() -> Vec<EvalMode> {
    match std::env::var("CFA_EVAL_MODE").as_deref() {
        Ok("semi-naive") => vec![EvalMode::SemiNaive],
        Ok("full-reeval") => vec![EvalMode::FullReeval],
        _ => vec![EvalMode::SemiNaive, EvalMode::FullReeval],
    }
}

/// Race reports for one program from every selected engine, labeled.
fn kcfa_reports(src: &str, k: usize) -> Vec<(String, RaceReport)> {
    let p = cfa::compile(src).expect("golden program compiles");
    let backends = backend_selection();
    let mut out = Vec::new();
    for mode in selected_modes() {
        let r = run_fixpoint_with(&mut KCfaMachine::new(&p, k), EngineLimits::default(), mode);
        assert!(r.status.is_complete(), "sequential {mode:?} incomplete");
        out.push((format!("sequential {mode:?}"), races_kcfa(&p, k, &r)));
        if backends.replicated {
            let r = run_fixpoint_parallel_on::<Replicated, _>(
                &mut KCfaMachine::new(&p, k),
                PAR_THREADS,
                EngineLimits::default(),
                mode,
            );
            assert!(r.status.is_complete(), "replicated {mode:?} incomplete");
            out.push((format!("replicated {mode:?}"), races_kcfa(&p, k, &r)));
        }
        if backends.sharded {
            let r = run_fixpoint_parallel_on::<Sharded, _>(
                &mut KCfaMachine::new(&p, k),
                PAR_THREADS,
                EngineLimits::default(),
                mode,
            );
            assert!(r.status.is_complete(), "sharded {mode:?} incomplete");
            out.push((format!("sharded {mode:?}"), races_kcfa(&p, k, &r)));
        }
    }
    out
}

/// Same engine sweep for the m-CFA machine.
fn mcfa_reports(src: &str, m: usize) -> Vec<(String, RaceReport)> {
    let p = cfa::compile(src).expect("golden program compiles");
    let backends = backend_selection();
    let mk = || FlatCfaMachine::new(&p, m, FlatPolicy::TopMFrames);
    let mut out = Vec::new();
    for mode in selected_modes() {
        let r = run_fixpoint_with(&mut mk(), EngineLimits::default(), mode);
        assert!(r.status.is_complete(), "sequential {mode:?} incomplete");
        out.push((format!("sequential {mode:?}"), races_mcfa(&p, m, &r)));
        if backends.replicated {
            let r = run_fixpoint_parallel_on::<Replicated, _>(
                &mut mk(),
                PAR_THREADS,
                EngineLimits::default(),
                mode,
            );
            assert!(r.status.is_complete(), "replicated {mode:?} incomplete");
            out.push((format!("replicated {mode:?}"), races_mcfa(&p, m, &r)));
        }
        if backends.sharded {
            let r = run_fixpoint_parallel_on::<Sharded, _>(
                &mut mk(),
                PAR_THREADS,
                EngineLimits::default(),
                mode,
            );
            assert!(r.status.is_complete(), "sharded {mode:?} incomplete");
            out.push((format!("sharded {mode:?}"), races_mcfa(&p, m, &r)));
        }
    }
    out
}

/// Asserts all engine-labeled reports agree, returning the canonical one.
fn assert_engines_agree_on_report(name: &str, reports: Vec<(String, RaceReport)>) -> RaceReport {
    let (_, canonical) = reports.first().expect("at least one engine ran").clone();
    for (engine, report) in &reports {
        assert_eq!(
            report, &canonical,
            "{name}: {engine} report diverges from {}",
            reports[0].0
        );
    }
    canonical
}

#[test]
fn racy_programs_all_report_races_everywhere() {
    for &(name, src) in golden_racy_programs() {
        for k in [0usize, 1] {
            let report = assert_engines_agree_on_report(name, kcfa_reports(src, k));
            assert!(
                !report.races.is_empty(),
                "{name} (k={k}): seeded race missed\n{}",
                report.render_text()
            );
        }
        let report = assert_engines_agree_on_report(name, mcfa_reports(src, 1));
        assert!(
            !report.races.is_empty(),
            "{name} (m=1): seeded race missed\n{}",
            report.render_text()
        );
    }
}

#[test]
fn synchronized_programs_stay_silent_everywhere() {
    for &(name, src) in golden_synchronized_programs() {
        let report = assert_engines_agree_on_report(name, kcfa_reports(src, 1));
        assert!(
            report.races.is_empty(),
            "{name} (k=1): false positive on synchronized program\n{}",
            report.render_text()
        );
        let report = assert_engines_agree_on_report(name, mcfa_reports(src, 1));
        assert!(
            report.races.is_empty(),
            "{name} (m=1): false positive on synchronized program\n{}",
            report.render_text()
        );
    }
}

#[test]
fn random_concurrent_reports_are_engine_independent() {
    // The random family has no expected race count, but whatever the
    // detector says must not depend on which engine ran the fixpoint.
    for seed in 0..8u64 {
        let src = cfa_testsupport::random_concurrent_scheme_program(seed, 25);
        assert_engines_agree_on_report(&format!("seed {seed}"), kcfa_reports(&src, 1));
    }
}

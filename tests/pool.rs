//! Multi-tenant pool suite: one long-lived [`AnalysisPool`] driving
//! many independent fixpoints at once.
//!
//! The contracts under test:
//!
//! 1. **identity** — a pooled run lands on the *same* fixpoint as a
//!    solo run of the same program (the fixed point of a monotone
//!    transfer function is unique, and the pool must not perturb it);
//! 2. **fair scheduling** — a pathological worst-case-family tenant
//!    cannot starve small pool-mates: round-robin quanta keep every
//!    tenant flowing;
//! 3. **isolation** — cancellation, time budgets, injected panics, and
//!    the stall watchdog are all per-tenant: one misbehaving run never
//!    takes a sibling down with it;
//! 4. **honest accounting** — time spent waiting in the admission
//!    queue is reported as `queue_wait` and never billed against the
//!    tenant's `time_budget`.
//!
//! Like the differential suites, everything here honors
//! `CFA_STORE_BACKEND` so CI can gate each store backend in isolation.

use cfa::analysis::engine::{EngineLimits, Status};
use cfa::analysis::kcfa::{analyze_kcfa, submit_kcfa, KcfaJob};
use cfa::analysis::parallel::{Replicated, Sharded};
use cfa::analysis::pool::{AnalysisPool, PoolBackend, PoolConfig};
use cfa::workloads::worst_case_source;
use cfa::CpsProgram;
use cfa_testsupport::{backend_selection, fixpoint_of, limits_with_plan, quiet_injected_panics};
use std::sync::Arc;
use std::time::Duration;

/// Compiles every program in the workloads suite (the paper's §6
/// table rows) to shared ownership, ready for pool submission.
fn suite_programs() -> Vec<(&'static str, Arc<CpsProgram>)> {
    cfa::workloads::suite()
        .iter()
        .map(|p| {
            (
                p.name,
                Arc::new(cfa::compile(p.source).expect("suite program compiles")),
            )
        })
        .collect()
}

/// A program small enough to finish in well under a millisecond solo.
fn tiny() -> Arc<CpsProgram> {
    Arc::new(cfa::compile("((lambda (x) x) 1)").expect("tiny program compiles"))
}

/// A worst-case-family hog: solo work roughly doubles per `n` (~3,000
/// evaluations at `n = 10`, ~12,000 at `n = 12`) — orders of magnitude
/// more pops than the single-quantum tiny program.
fn hog(n: usize) -> Arc<CpsProgram> {
    Arc::new(cfa::compile(&worst_case_source(n)).expect("worst-case program compiles"))
}

/// Pushing the whole workload suite through one pool concurrently must
/// land every tenant on exactly the fixpoint a solo run computes.
fn pool_matches_solo_runs<B: PoolBackend>() {
    let pool = AnalysisPool::new(PoolConfig {
        threads: 3,
        ..PoolConfig::default()
    });
    let jobs: Vec<(&str, Arc<CpsProgram>, KcfaJob)> = suite_programs()
        .into_iter()
        .map(|(name, p)| {
            let job = submit_kcfa::<B>(&pool, Arc::clone(&p), 1, EngineLimits::default());
            (name, p, job)
        })
        .collect();
    for (name, p, job) in jobs {
        let pooled = job.wait();
        assert_eq!(
            pooled.fixpoint.status,
            Status::Completed,
            "{}/{name}: pooled run should complete",
            B::NAME
        );
        let solo = analyze_kcfa(&p, 1, EngineLimits::default());
        assert_eq!(
            fixpoint_of(&pooled.fixpoint),
            fixpoint_of(&solo.fixpoint),
            "{}/{name}: pooled fixpoint diverged from the solo run",
            B::NAME
        );
        assert_eq!(
            pooled.halt_values,
            solo.halt_values,
            "{}/{name}: pooled halt values diverged from the solo run",
            B::NAME
        );
    }
    pool.shutdown();
}

#[test]
fn pool_matches_solo_runs_on_every_backend() {
    let backends = backend_selection();
    if backends.replicated {
        pool_matches_solo_runs::<Replicated>();
    }
    if backends.sharded {
        pool_matches_solo_runs::<Sharded>();
    }
}

/// Time spent queued behind another tenant is not the tenant's fault:
/// a tiny analysis with a 5ms `time_budget` that waits ~100ms for a
/// hog to clear the pool's only thread must still *complete* — and
/// report the wait in `queue_wait`, not `elapsed`.
fn queue_wait_is_not_billed_to_the_time_budget<B: PoolBackend>() {
    // One thread and an effectively unbounded quantum: the hog runs to
    // completion before the tiny tenant is ever activated.
    let pool = AnalysisPool::new(PoolConfig {
        threads: 1,
        queue_depth: 16,
        quantum_pops: u64::MAX,
    });
    let budget = Duration::from_millis(5);
    let hog_job = submit_kcfa::<B>(&pool, hog(11), 1, EngineLimits::default());
    let limits = EngineLimits {
        time_budget: Some(budget),
        ..EngineLimits::default()
    };
    let tiny_job = submit_kcfa::<B>(&pool, tiny(), 1, limits);

    let tiny_run = tiny_job.wait();
    assert_eq!(
        tiny_run.fixpoint.status,
        Status::Completed,
        "{}: a long-queued tiny analysis must not be timed out by its queue wait",
        B::NAME
    );
    assert!(
        tiny_run.fixpoint.queue_wait > budget,
        "{}: expected a queue wait past the whole 5ms budget, got {:?}",
        B::NAME,
        tiny_run.fixpoint.queue_wait
    );
    assert!(
        tiny_run.fixpoint.elapsed < budget,
        "{}: the tiny run itself should finish within its budget, took {:?}",
        B::NAME,
        tiny_run.fixpoint.elapsed
    );
    assert_eq!(hog_job.wait().fixpoint.status, Status::Completed);
    pool.shutdown();
}

#[test]
fn queue_wait_is_not_billed_to_the_time_budget_on_every_backend() {
    let backends = backend_selection();
    if backends.replicated {
        queue_wait_is_not_billed_to_the_time_budget::<Replicated>();
    }
    if backends.sharded {
        queue_wait_is_not_billed_to_the_time_budget::<Sharded>();
    }
}

/// Cancelling a still-queued request must resolve it as `Cancelled`
/// without ever running it: zero iterations, zero elapsed work.
fn cancel_while_queued_runs_nothing<B: PoolBackend>() {
    let pool = AnalysisPool::new(PoolConfig {
        threads: 1,
        queue_depth: 16,
        quantum_pops: u64::MAX,
    });
    let hog_job = submit_kcfa::<B>(&pool, hog(10), 1, EngineLimits::default());
    let queued = submit_kcfa::<B>(&pool, tiny(), 1, EngineLimits::default());
    queued.cancel();
    let run = queued.wait();
    assert_eq!(
        run.fixpoint.status,
        Status::Cancelled,
        "{}: cancelling a queued request must resolve it as Cancelled",
        B::NAME
    );
    assert_eq!(
        run.fixpoint.iterations,
        0,
        "{}: a cancelled-before-activation run must do zero evaluations",
        B::NAME
    );
    assert_eq!(hog_job.wait().fixpoint.status, Status::Completed);
    pool.shutdown();
}

#[test]
fn cancel_while_queued_runs_nothing_on_every_backend() {
    let backends = backend_selection();
    if backends.replicated {
        cancel_while_queued_runs_nothing::<Replicated>();
    }
    if backends.sharded {
        cancel_while_queued_runs_nothing::<Sharded>();
    }
}

/// Round-robin fairness: on a single pool thread, a worst-case-family
/// hog (~12,000 pops, ~48 quanta) and a batch of single-quantum small
/// tenants time-slice. Every small tenant completes while the hog is
/// *still running* — proven by cancelling the hog afterwards and
/// observing `Cancelled`, which is only possible if it had work left.
/// A starvation-prone scheduler (run-to-completion) would instead
/// finish the hog first and the cancel would land on a completed run.
fn hog_cannot_starve_small_tenants<B: PoolBackend>() {
    let pool = AnalysisPool::new(PoolConfig {
        threads: 1,
        queue_depth: 32,
        quantum_pops: 256,
    });
    let hog_job = submit_kcfa::<B>(&pool, hog(12), 1, EngineLimits::default());
    let smalls: Vec<KcfaJob> = (0..8)
        .map(|_| submit_kcfa::<B>(&pool, tiny(), 1, EngineLimits::default()))
        .collect();
    for (i, job) in smalls.into_iter().enumerate() {
        let run = job.wait();
        assert_eq!(
            run.fixpoint.status,
            Status::Completed,
            "{}: small tenant {i} starved behind the hog",
            B::NAME
        );
    }
    hog_job.cancel();
    let hog_run = hog_job.wait();
    assert_eq!(
        hog_run.fixpoint.status,
        Status::Cancelled,
        "{}: the hog should still have been mid-run when the smalls finished",
        B::NAME
    );
    assert!(
        hog_run.fixpoint.iterations > 0,
        "{}: the hog should have made some progress before cancellation",
        B::NAME
    );
    pool.shutdown();
}

#[test]
fn hog_cannot_starve_small_tenants_on_every_backend() {
    let backends = backend_selection();
    if backends.replicated {
        hog_cannot_starve_small_tenants::<Replicated>();
    }
    if backends.sharded {
        hog_cannot_starve_small_tenants::<Sharded>();
    }
}

/// A tenant whose transfer function panics aborts alone: its
/// pool-mates all complete, on fixpoints byte-identical to solo runs.
fn panicking_tenant_spares_its_siblings<B: PoolBackend>() {
    use cfa::analysis::fabric::FaultPlan;
    quiet_injected_panics();
    let pool = AnalysisPool::new(PoolConfig {
        threads: 2,
        ..PoolConfig::default()
    });
    let doomed = submit_kcfa::<B>(
        &pool,
        hog(10),
        1,
        limits_with_plan(FaultPlan::new().panic_at_eval(50)),
    );
    let siblings: Vec<(&str, Arc<CpsProgram>, KcfaJob)> = suite_programs()
        .into_iter()
        .map(|(name, p)| {
            let job = submit_kcfa::<B>(&pool, Arc::clone(&p), 1, EngineLimits::default());
            (name, p, job)
        })
        .collect();

    let doomed_run = doomed.wait();
    let Status::Aborted { message, .. } = &doomed_run.fixpoint.status else {
        panic!(
            "{}: expected the planned panic to abort the tenant, got {:?}",
            B::NAME,
            doomed_run.fixpoint.status
        );
    };
    assert!(
        message.contains("injected fault: panic at evaluation 50"),
        "{}: abort message {message:?} should carry the injected payload",
        B::NAME
    );

    for (name, p, job) in siblings {
        let pooled = job.wait();
        assert_eq!(
            pooled.fixpoint.status,
            Status::Completed,
            "{}/{name}: sibling of a panicking tenant must still complete",
            B::NAME
        );
        let solo = analyze_kcfa(&p, 1, EngineLimits::default());
        assert_eq!(
            fixpoint_of(&pooled.fixpoint),
            fixpoint_of(&solo.fixpoint),
            "{}/{name}: sibling fixpoint perturbed by a pool-mate's panic",
            B::NAME
        );
    }
    pool.shutdown();
}

#[test]
fn panicking_tenant_spares_its_siblings_on_every_backend() {
    let backends = backend_selection();
    if backends.replicated {
        panicking_tenant_spares_its_siblings::<Replicated>();
    }
    if backends.sharded {
        panicking_tenant_spares_its_siblings::<Sharded>();
    }
}

/// Dropping the pool (instead of calling `shutdown`) must still drain
/// every admitted tenant — handles never hang.
#[test]
fn drop_drains_admitted_tenants() {
    let pool = AnalysisPool::new(PoolConfig {
        threads: 2,
        ..PoolConfig::default()
    });
    let jobs: Vec<KcfaJob> = suite_programs()
        .into_iter()
        .map(|(_, p)| submit_kcfa::<Replicated>(&pool, p, 1, EngineLimits::default()))
        .collect();
    drop(pool);
    for job in jobs {
        assert_eq!(job.wait().fixpoint.status, Status::Completed);
    }
}

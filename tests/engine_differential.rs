//! Differential tests: the delta-driven interned engine must compute
//! *exactly* the fixpoint of the retained original engine.
//!
//! The fixed point of a monotone transfer function is unique, so the
//! rebuilt hot path (interned values, zero-copy flow sets, epoch-gated
//! scheduling — `cfa_core::engine`), the work-stealing parallel engine
//! (`cfa_core::parallel` — any interleaving, any thread count) and the
//! retained pre-interning engine (`cfa_core::reference`) must agree on
//!
//! * the set of reached configurations, and
//! * every `(address, flow set)` fact in the final store,
//!
//! for every analysis family, on the curated workloads suite (Scheme and
//! Featherweight Java) and on randomized programs.

use cfa::analysis::engine::{run_fixpoint, EngineLimits};
use cfa::analysis::flatcfa::{FlatCfaMachine, FlatPolicy};
use cfa::analysis::kcfa::KCfaMachine;
use cfa::analysis::parallel::{run_fixpoint_parallel, ParallelMachine};
use cfa::analysis::reference::{run_fixpoint_reference, ReferenceMachine};
use cfa::fj::kcfa::{FjAnalysisOptions, FjMachine};
use cfa::fj::parse_fj;
use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet, HashSet};
use std::hash::Hash;

/// Thread count for the parallel runs: enough workers that task
/// migration, fact broadcast, and steals all actually happen.
const PAR_THREADS: usize = 3;

/// Runs all three engines over fresh machine instances and asserts
/// identical configuration sets and stores.
fn assert_engines_agree<M, R, F, G>(label: &str, mk_new: F, mk_ref: G)
where
    M: ParallelMachine,
    R: ReferenceMachine<Config = M::Config, Addr = M::Addr, Val = M::Val>,
    M::Config: Hash + Eq + Clone + Send + Sync + std::fmt::Debug,
    M::Addr: Ord + Clone + Send + Sync + std::fmt::Debug,
    M::Val: Ord + Clone + Hash + Send + Sync + std::fmt::Debug,
    F: Fn() -> M,
    G: FnOnce() -> R,
{
    let mut new_machine = mk_new();
    let mut par_machine = mk_new();
    let mut ref_machine = mk_ref();
    let new = run_fixpoint(&mut new_machine, EngineLimits::default());
    let par = run_fixpoint_parallel(&mut par_machine, PAR_THREADS, EngineLimits::default());
    let reference = run_fixpoint_reference(&mut ref_machine, EngineLimits::default());
    assert!(new.status.is_complete(), "{label}: delta engine incomplete");
    assert!(
        par.status.is_complete(),
        "{label}: parallel engine incomplete"
    );
    assert!(
        reference.status.is_complete(),
        "{label}: reference engine incomplete"
    );

    let new_configs: HashSet<&M::Config> = new.configs.iter().collect();
    let par_configs: HashSet<&M::Config> = par.configs.iter().collect();
    let ref_configs: HashSet<&M::Config> = reference.configs.iter().collect();
    assert_eq!(
        new_configs, ref_configs,
        "{label}: reached configurations differ"
    );
    assert_eq!(
        par_configs, ref_configs,
        "{label}: parallel configurations differ"
    );

    let new_store: BTreeMap<M::Addr, BTreeSet<M::Val>> =
        new.store.iter().map(|(a, set)| (a.clone(), set)).collect();
    let par_store: BTreeMap<M::Addr, BTreeSet<M::Val>> =
        par.store.iter().map(|(a, set)| (a.clone(), set)).collect();
    let ref_store: BTreeMap<M::Addr, BTreeSet<M::Val>> = reference
        .store
        .iter()
        .map(|(a, set)| (a.clone(), set.clone()))
        .collect();
    assert_eq!(new_store, ref_store, "{label}: final stores differ");
    assert_eq!(par_store, ref_store, "{label}: parallel store differs");
}

fn check_scheme(src: &str, name: &str) {
    let p = cfa::compile(src).expect("program compiles");
    for k in [0usize, 1] {
        assert_engines_agree(
            &format!("{name} k-CFA k={k}"),
            || KCfaMachine::new(&p, k),
            || KCfaMachine::new(&p, k),
        );
    }
    for (policy, tag) in [
        (FlatPolicy::TopMFrames, "m-CFA"),
        (FlatPolicy::LastKCalls, "poly-k"),
    ] {
        for bound in [0usize, 1, 2] {
            assert_engines_agree(
                &format!("{name} {tag} bound={bound}"),
                || FlatCfaMachine::new(&p, bound, policy),
                || FlatCfaMachine::new(&p, bound, policy),
            );
        }
    }
}

fn check_fj(src: &str, name: &str) {
    let p = parse_fj(src).expect("program parses");
    for k in [0usize, 1] {
        for options in [FjAnalysisOptions::paper(k), FjAnalysisOptions::oo(k)] {
            assert_engines_agree(
                &format!("{name} FJ {options:?}"),
                || FjMachine::new(&p, options),
                || FjMachine::new(&p, options),
            );
        }
    }
}

/// Every Scheme program of the workloads suite, at every CPS analysis
/// family. The two heavyweights are exercised at k = 0 only to keep the
/// suite fast; k = 1 coverage comes from the rest.
#[test]
fn suite_scheme_fixpoints_are_identical() {
    for prog in cfa::workloads::suite() {
        if matches!(prog.name, "interp" | "scm2c") {
            let p = cfa::compile(prog.source).expect("suite compiles");
            assert_engines_agree(
                &format!("{} k-CFA k=0", prog.name),
                || KCfaMachine::new(&p, 0),
                || KCfaMachine::new(&p, 0),
            );
            continue;
        }
        check_scheme(prog.source, prog.name);
    }
}

/// Every Featherweight Java program of the OO suite, both tick policies.
#[test]
fn suite_fj_fixpoints_are_identical() {
    for prog in cfa::workloads::fj_suite() {
        check_fj(prog.source, prog.name);
    }
}

/// The paper's worst-case family — the densest store traffic we have.
#[test]
fn worst_case_fixpoints_are_identical() {
    for n in [2usize, 4] {
        let src = cfa::workloads::worst_case_source(n);
        check_scheme(&src, &format!("worst-case n={n}"));
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Randomized Scheme programs: identical fixpoints across engines.
    #[test]
    fn random_scheme_fixpoints_are_identical(seed in 0u64..10_000) {
        let src = cfa::workloads::gen::random_program(seed, 35);
        check_scheme(&src, &format!("random seed={seed}"));
    }

    /// Randomized Featherweight Java programs: identical fixpoints.
    #[test]
    fn random_fj_fixpoints_are_identical(seed in 0u64..10_000) {
        let src = cfa::workloads::gen_fj::random_fj_program(seed, Default::default());
        check_fj(&src, &format!("random FJ seed={seed}"));
    }
}

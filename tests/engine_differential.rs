//! Differential tests: every engine must compute *exactly* the fixpoint
//! of the retained original engine.
//!
//! The fixed point of a monotone transfer function is unique, so the
//! rebuilt hot path (`cfa_core::engine`) in both evaluation modes
//! (semi-naive delta transfer functions and full re-evaluation), the
//! work-stealing parallel engine under **both store backends** —
//! replicated (`cfa_core::parallel`) and shared address-sharded
//! (`cfa_core::shardstore`), any interleaving, any thread count, both
//! modes — and the retained pre-interning engine
//! (`cfa_core::reference`) must agree on
//!
//! * the set of reached configurations, and
//! * every `(address, flow set)` fact in the final store,
//!
//! for every analysis family, on the curated workloads suite (Scheme and
//! Featherweight Java) and on randomized programs. The shared
//! engine-quad runner lives in `cfa_testsupport`.

use cfa_testsupport::{check_fj_program, check_scheme_program};
use proptest::prelude::*;

/// Every Scheme program of the workloads suite, at every CPS analysis
/// family. The two heavyweights are exercised at k = 0 only to keep the
/// suite fast; k = 1 coverage comes from the rest.
#[test]
fn suite_scheme_fixpoints_are_identical() {
    for prog in cfa::workloads::suite() {
        if matches!(prog.name, "interp" | "scm2c") {
            let p = cfa::compile(prog.source).expect("suite compiles");
            cfa_testsupport::assert_engines_agree(
                &format!("{} k-CFA k=0", prog.name),
                || cfa::analysis::kcfa::KCfaMachine::new(&p, 0),
                || cfa::analysis::kcfa::KCfaMachine::new(&p, 0),
            );
            continue;
        }
        check_scheme_program(prog.source, prog.name, &[0, 1]);
    }
}

/// Every Featherweight Java program of the OO suite, both tick policies.
#[test]
fn suite_fj_fixpoints_are_identical() {
    for prog in cfa::workloads::fj_suite() {
        check_fj_program(prog.source, prog.name, &[0, 1]);
    }
}

/// The paper's worst-case family — the densest store traffic we have.
#[test]
fn worst_case_fixpoints_are_identical() {
    for n in [2usize, 4] {
        let src = cfa::workloads::worst_case_source(n);
        check_scheme_program(&src, &format!("worst-case n={n}"), &[0, 1]);
    }
}

/// The concurrent corpus: golden race-detector programs plus random
/// spawn/join/atom programs. These exercise the abstract-thread domain
/// (thread-return addresses, join blocking, atom cells), where a store
/// backend that mishandled cross-thread flow would diverge. The naive
/// per-state-store machine is deliberately absent here — it cannot
/// model cross-thread store flow (see `cfa_core::naive`).
#[test]
fn concurrent_fixpoints_are_identical() {
    for (name, src) in cfa_testsupport::concurrent_scheme_corpus() {
        check_scheme_program(&src, &name, &[0, 1]);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Randomized Scheme programs: identical fixpoints across engines.
    #[test]
    fn random_scheme_fixpoints_are_identical(seed in 0u64..10_000) {
        let src = cfa_testsupport::random_scheme_program(seed, 35);
        check_scheme_program(&src, &format!("random seed={seed}"), &[0, 1]);
    }

    /// Randomized Featherweight Java programs: identical fixpoints.
    #[test]
    fn random_fj_fixpoints_are_identical(seed in 0u64..10_000) {
        let src = cfa_testsupport::random_fj_program(seed, Default::default());
        check_fj_program(&src, &format!("random FJ seed={seed}"), &[0, 1]);
    }

    /// Randomized concurrent Scheme programs: identical fixpoints across
    /// engines on the abstract-thread domain.
    #[test]
    fn random_concurrent_fixpoints_are_identical(seed in 0u64..10_000) {
        let src = cfa_testsupport::random_concurrent_scheme_program(seed, 25);
        check_scheme_program(&src, &format!("random concurrent seed={seed}"), &[0, 1]);
    }
}

//! The paradox itself, as deterministic assertions:
//!
//! * Figure 2: functional 1-CFA analyzes the probe λ in exactly N·M
//!   environments;
//! * Figure 1: FJ 1-CFA and functional m-CFA use O(N+M) contexts;
//! * §2.2: the worst-case family forces 2ⁿ environments on k-CFA but
//!   polynomially many on m-CFA.

use cfa::analysis::{analyze_kcfa, analyze_mcfa, EngineLimits};
use cfa::fj::{analyze_fj, parse_fj, FjAnalysisOptions};

fn probe_envs(program: &cfa::CpsProgram, metrics: &cfa::Metrics) -> usize {
    program
        .lam_ids()
        .filter(|&l| {
            program
                .lam(l)
                .params
                .first()
                .map(|p| program.name(*p).starts_with("paradox-probe"))
                .unwrap_or(false)
        })
        .map(|l| metrics.env_count(l))
        .sum()
}

#[test]
fn figure2_functional_kcfa_env_count_is_n_times_m() {
    for (n, m) in [(1, 1), (2, 3), (4, 4), (5, 2), (8, 8)] {
        let program = cfa::compile(&cfa::workloads::fn_program(n, m)).unwrap();
        let r = analyze_kcfa(&program, 1, EngineLimits::default());
        assert_eq!(
            probe_envs(&program, &r.metrics),
            n * m,
            "N={n}, M={m}: probe λ environment count"
        );
    }
}

#[test]
fn figure2_functional_mcfa_env_count_is_linear() {
    for (n, m) in [(2, 2), (4, 4), (8, 8), (12, 12)] {
        let program = cfa::compile(&cfa::workloads::fn_program(n, m)).unwrap();
        let r = analyze_mcfa(&program, 1, EngineLimits::default());
        assert!(
            r.metrics.distinct_envs <= 2 * (n + m) + 4,
            "N={n}, M={m}: m-CFA envs {} exceed linear bound",
            r.metrics.distinct_envs
        );
    }
}

#[test]
fn figure1_oo_kcfa_context_count_is_linear() {
    for (n, m) in [(2, 2), (4, 4), (8, 8), (12, 12)] {
        let src = cfa::workloads::oo_program(n, m);
        let program = parse_fj(&src).unwrap();
        let r = analyze_fj(&program, FjAnalysisOptions::oo(1), EngineLimits::default());
        assert!(r.metrics.status.is_complete());
        assert!(
            r.metrics.time_count <= 2 * (n + m) + 4,
            "N={n}, M={m}: FJ contexts {} exceed linear bound",
            r.metrics.time_count
        );
    }
}

#[test]
fn worst_case_forces_exponential_envs_on_kcfa() {
    for n in [2usize, 4, 6, 8] {
        let program = cfa::compile(&cfa::workloads::worst_case_source(n)).unwrap();
        let r = analyze_kcfa(&program, 1, EngineLimits::default());
        assert!(r.metrics.status.is_complete(), "n={n} should still finish");
        let max_envs = r.metrics.max_env_count();
        assert!(
            max_envs >= 1 << n,
            "n={n}: expected ≥ 2^{n} environments for some λ, got {max_envs}"
        );
    }
}

#[test]
fn worst_case_stays_polynomial_on_mcfa() {
    for n in [2usize, 4, 8, 16] {
        let program = cfa::compile(&cfa::workloads::worst_case_source(n)).unwrap();
        let r = analyze_mcfa(&program, 1, EngineLimits::default());
        assert!(r.metrics.status.is_complete(), "n={n}");
        assert!(
            r.metrics.distinct_envs <= 8 * n + 8,
            "n={n}: m-CFA envs {} not linear",
            r.metrics.distinct_envs
        );
    }
}

#[test]
fn worst_case_halt_values_agree_between_k1_and_m1() {
    // On this family both analyses are equally (im)precise about the
    // final value; only their cost differs.
    for n in [2usize, 4, 6] {
        let program = cfa::compile(&cfa::workloads::worst_case_source(n)).unwrap();
        let k = analyze_kcfa(&program, 1, EngineLimits::default());
        let m = analyze_mcfa(&program, 1, EngineLimits::default());
        assert_eq!(k.metrics.halt_values, m.metrics.halt_values, "n={n}");
    }
}

#[test]
fn naive_search_explodes_before_single_store() {
    use cfa::analysis::naive::{analyze_kcfa_naive, NaiveLimits};
    use std::time::Duration;
    let program = cfa::compile(&cfa::workloads::worst_case_source(3)).unwrap();
    // Even truncated (the naive search may not finish in reasonable
    // time — that is the point), the explored-state count must dwarf
    // the single-threaded-store configuration count.
    let naive = analyze_kcfa_naive(
        &program,
        1,
        NaiveLimits {
            max_states: 10_000,
            time_budget: Some(Duration::from_secs(20)),
        },
    );
    let fast = analyze_kcfa(&program, 1, EngineLimits::default());
    assert!(
        naive.state_count > 10 * fast.fixpoint.config_count(),
        "naive {} vs configs {}",
        naive.state_count,
        fast.fixpoint.config_count()
    );
}

//! End-to-end pipeline tests: source → CPS → concrete execution →
//! abstract analysis, across the whole suite.

use cfa::analysis::{Analysis, EngineLimits};
use cfa::concrete::base::Limits;

/// Every suite program parses, converts, runs on both concrete machines
/// with identical results, and completes under every panel analysis.
#[test]
fn suite_runs_everywhere() {
    for p in cfa::workloads::suite() {
        let program = cfa::compile(p.source).unwrap_or_else(|e| panic!("{}: {e}", p.name));

        let shared = cfa::concrete::run_shared(&program, Limits::default());
        let flat = cfa::concrete::run_flat(&program, Limits::default());
        let value = shared
            .outcome
            .value()
            .unwrap_or_else(|| panic!("{} did not halt: {:?}", p.name, shared.outcome));
        assert_eq!(
            Some(value),
            flat.outcome.value(),
            "{}: machines disagree",
            p.name
        );

        for analysis in Analysis::paper_panel() {
            let m = cfa::analyze(&program, analysis, EngineLimits::default());
            assert!(
                m.status.is_complete(),
                "{} under {analysis} did not finish",
                p.name
            );
            assert!(
                m.reachable_user_calls > 0,
                "{} under {analysis}: empty analysis",
                p.name
            );
        }
    }
}

/// Expected concrete results for the suite (golden outcomes).
#[test]
fn suite_concrete_results_are_stable() {
    type Check = fn(&str) -> bool;
    let expected: &[(&str, Check)] = &[
        ("eta", |v| v.parse::<i64>().is_ok()),
        ("map", |v| v.parse::<i64>().is_ok()),
        ("sat", |v| v == "sat"),
        ("regex", |v| v == "#t"),
        ("scm2java", |v| v.contains("class Out")),
        ("interp", |v| v.parse::<i64>().is_ok()), // exact value checked below
        ("scm2c", |v| v.contains("int a")),
    ];
    for p in cfa::workloads::suite() {
        let program = cfa::compile(p.source).unwrap();
        let run = cfa::concrete::run_shared(&program, Limits::default());
        let value = run
            .outcome
            .value()
            .unwrap_or_else(|| panic!("{} failed: {:?}", p.name, run.outcome));
        if let Some((_, check)) = expected.iter().find(|(n, _)| *n == p.name) {
            // `interp` is validated precisely in its own test below.
            if p.name != "interp" {
                assert!(check(value), "{}: unexpected result {value:?}", p.name);
            }
        }
    }
}

/// The interp program computes square(inc(6)) = 49.
#[test]
fn interp_result_is_exact() {
    let program = cfa::compile(cfa::workloads::suite::INTERP).unwrap();
    let run = cfa::concrete::run_shared(&program, Limits::default());
    assert_eq!(run.outcome.value(), Some("49"));
}

/// Abstract halt sets must cover the concrete halt value (soundness at
/// the observable level) for every analysis and program.
#[test]
fn abstract_halt_covers_concrete() {
    for p in cfa::workloads::suite() {
        let program = cfa::compile(p.source).unwrap();
        let run = cfa::concrete::run_shared(&program, Limits::default());
        let Some(value) = run.outcome.value() else {
            continue;
        };
        for analysis in Analysis::paper_panel() {
            let m = cfa::analyze(&program, analysis, EngineLimits::default());
            let covered = m.halt_values.iter().any(|abs| {
                abs == value
                    || abs == "int⊤" && value.parse::<i64>().is_ok()
                    || abs == "bool⊤" && (value == "#t" || value == "#f")
                    || abs == "str⊤" && value.starts_with('"')
                    || abs.starts_with("#<pair") && value.starts_with('(')
                    || abs.starts_with("#<proc") && value.starts_with("#<procedure")
                    || value == abs.trim_start_matches('\'')
            });
            assert!(
                covered,
                "{} under {analysis}: concrete {value:?} not covered by {:?}",
                p.name, m.halt_values
            );
        }
    }
}

/// Deeper contexts never make the analysis less precise on the suite
/// (halt-set inclusion, k and m at 2 vs 0).
#[test]
fn deeper_contexts_refine_halt_sets() {
    for p in cfa::workloads::suite() {
        let program = cfa::compile(p.source).unwrap();
        let k0 = cfa::analyze(&program, Analysis::KCfa { k: 0 }, EngineLimits::default());
        let k2 = cfa::analyze(&program, Analysis::KCfa { k: 2 }, EngineLimits::default());
        let m2 = cfa::analyze(&program, Analysis::MCfa { m: 2 }, EngineLimits::default());
        assert!(
            k2.halt_values.is_subset(&k0.halt_values),
            "{}: k=2 {:?} ⊄ k=0 {:?}",
            p.name,
            k2.halt_values,
            k0.halt_values
        );
        assert!(
            m2.halt_values.is_subset(&k0.halt_values),
            "{}: m=2 {:?} ⊄ k=0 {:?}",
            p.name,
            m2.halt_values,
            k0.halt_values
        );
    }
}

/// Inlining counts: context-sensitive analyses support at least as many
/// inlinings as 0CFA on every suite program (paper §6.2 shape).
#[test]
fn context_sensitivity_never_hurts_inlining() {
    for p in cfa::workloads::suite() {
        let program = cfa::compile(p.source).unwrap();
        let k0 = cfa::analyze(&program, Analysis::KCfa { k: 0 }, EngineLimits::default());
        let k1 = cfa::analyze(&program, Analysis::KCfa { k: 1 }, EngineLimits::default());
        let m1 = cfa::analyze(&program, Analysis::MCfa { m: 1 }, EngineLimits::default());
        assert!(
            k1.singleton_user_calls >= k0.singleton_user_calls,
            "{}: k=1 {} < k=0 {}",
            p.name,
            k1.singleton_user_calls,
            k0.singleton_user_calls
        );
        assert!(
            m1.singleton_user_calls >= k0.singleton_user_calls,
            "{}: m=1 {} < k=0 {}",
            p.name,
            m1.singleton_user_calls,
            k0.singleton_user_calls
        );
    }
}

/// The extended (classic CFA literature) benchmarks: both machines
/// agree, every analysis terminates, and halt sets cover the concrete
/// value.
#[test]
fn extended_suite_runs_everywhere() {
    for p in cfa::workloads::extended_suite() {
        let program = cfa::compile(p.source).unwrap_or_else(|e| panic!("{}: {e}", p.name));
        let shared = cfa::concrete::run_shared(&program, Limits::default());
        let flat = cfa::concrete::run_flat(&program, Limits::default());
        let value = shared
            .outcome
            .value()
            .unwrap_or_else(|| panic!("{} did not halt: {:?}", p.name, shared.outcome));
        assert_eq!(
            Some(value),
            flat.outcome.value(),
            "{}: machines disagree",
            p.name
        );
        for analysis in Analysis::paper_panel() {
            let m = cfa::analyze(&program, analysis, EngineLimits::default());
            assert!(m.status.is_complete(), "{} under {analysis}", p.name);
        }
        // Known concrete results.
        match p.name {
            "blur" => assert_eq!(value, "#f"),
            "loop2" => assert!(value.parse::<i64>().is_ok()),
            "mj09" => assert!(value.parse::<i64>().is_ok()),
            "primtest" => assert_eq!(value, "15", "primes ≤ 50"),
            "church" => assert_eq!(value, "11", "5 + 6 via Church numerals"),
            "ycomb" => assert_eq!(value, "141", "5! + triangle(6)"),
            "stream" => assert_eq!(value, "34", "Σ doubles(4) + Σ squares(3)"),
            other => panic!("unknown extended program {other}"),
        }
    }
}

/// m-CFA matches k-CFA's precision on the whole suite (the paper's
/// empirical §6.2 conclusion) — measured by the inlining metric.
#[test]
fn mcfa_matches_kcfa_precision_on_suite() {
    for p in cfa::workloads::suite() {
        let program = cfa::compile(p.source).unwrap();
        let k1 = cfa::analyze(&program, Analysis::KCfa { k: 1 }, EngineLimits::default());
        let m1 = cfa::analyze(&program, Analysis::MCfa { m: 1 }, EngineLimits::default());
        assert_eq!(
            k1.singleton_user_calls, m1.singleton_user_calls,
            "{}: k=1 and m=1 disagree on inlinings",
            p.name
        );
    }
}

//! Experiment E5 as a test: the §6 identity example.
//!
//! Paper claims, verbatim:
//! * without the intervening call, naive poly 1CFA, m=1, and k=1 all
//!   agree the program's value is `4`;
//! * with `(do-something)` inside `identity`, poly 1CFA answers
//!   `{3, 4}` while m=1 and k=1 still answer `{4}`.

use cfa::analysis::{Analysis, EngineLimits};
use cfa::workloads::{IDENTITY_PLAIN, IDENTITY_WITH_CALL};
use std::collections::BTreeSet;

fn halts(src: &str, analysis: Analysis) -> BTreeSet<String> {
    let program = cfa::compile(src).unwrap();
    cfa::analyze(&program, analysis, EngineLimits::default()).halt_values
}

fn set(values: &[&str]) -> BTreeSet<String> {
    values.iter().map(|s| s.to_string()).collect()
}

#[test]
fn without_intervening_call_all_sensitive_analyses_agree() {
    for analysis in [
        Analysis::KCfa { k: 1 },
        Analysis::MCfa { m: 1 },
        Analysis::PolyKCfa { k: 1 },
    ] {
        assert_eq!(halts(IDENTITY_PLAIN, analysis), set(&["4"]), "{analysis}");
    }
}

#[test]
fn zero_cfa_merges_both() {
    assert_eq!(
        halts(IDENTITY_PLAIN, Analysis::KCfa { k: 0 }),
        set(&["3", "4"])
    );
    assert_eq!(
        halts(IDENTITY_WITH_CALL, Analysis::KCfa { k: 0 }),
        set(&["3", "4"])
    );
}

#[test]
fn intervening_call_degrades_poly_kcfa_only() {
    assert_eq!(
        halts(IDENTITY_WITH_CALL, Analysis::PolyKCfa { k: 1 }),
        set(&["3", "4"]),
        "naive poly 1CFA must merge after the intervening call"
    );
    assert_eq!(
        halts(IDENTITY_WITH_CALL, Analysis::KCfa { k: 1 }),
        set(&["4"])
    );
    assert_eq!(
        halts(IDENTITY_WITH_CALL, Analysis::MCfa { m: 1 }),
        set(&["4"])
    );
}

#[test]
fn deeper_poly_context_eventually_recovers_precision() {
    // Some finite last-k window clears the intervening call chain — but
    // k = 1 is not enough (that is the paper's point: any recursive or
    // intervening call burns last-k context, whereas m-CFA's top-m
    // frames are immune).
    let recovery_k = (1..=6)
        .find(|&k| halts(IDENTITY_WITH_CALL, Analysis::PolyKCfa { k }) == set(&["4"]))
        .expect("some finite k recovers precision");
    assert!(
        recovery_k > 1,
        "k=1 must NOT recover (got recovery at {recovery_k})"
    );
}

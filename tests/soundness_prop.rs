//! Property-based soundness and differential testing over randomized
//! programs.
//!
//! For every generated program:
//! * both concrete machines agree on the outcome (differential);
//! * k-CFA covers the shared-environment run (abstraction map α, §3.5);
//! * m-CFA covers the flat-environment run (§5.3);
//! * the abstract halt set covers the concrete value.

use cfa::analysis::soundness::{check_kcfa, check_mcfa};
use cfa::analysis::{analyze_kcfa, analyze_mcfa, EngineLimits};
use cfa::concrete::base::{Limits, Outcome};
use cfa::concrete::{run_flat_traced, run_shared_traced};
use proptest::prelude::*;

fn limits() -> Limits {
    Limits { max_steps: 20_000 }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn machines_agree(seed in 0u64..10_000) {
        let src = cfa::workloads::gen::random_program(seed, 40);
        let program = cfa::compile(&src).expect("generated programs compile");
        let shared = run_shared_traced(&program, limits(), false);
        let flat = run_flat_traced(&program, limits(), false);
        match (&shared.outcome, &flat.outcome) {
            (Outcome::Halted(a), Outcome::Halted(b)) => prop_assert_eq!(a, b),
            (Outcome::Error(a), Outcome::Error(b)) => prop_assert_eq!(a, b),
            (Outcome::OutOfFuel, Outcome::OutOfFuel) => {}
            (a, b) => prop_assert!(false, "outcomes diverge: {:?} vs {:?}", a, b),
        }
    }

    #[test]
    fn kcfa_is_sound(seed in 0u64..10_000, k in 0usize..3) {
        let src = cfa::workloads::gen::random_program(seed, 35);
        let program = cfa::compile(&src).expect("generated programs compile");
        let concrete = run_shared_traced(&program, limits(), true);
        let result = analyze_kcfa(&program, k, EngineLimits::default());
        prop_assert!(result.metrics.status.is_complete());
        if let Err(v) = check_kcfa(&program, k, &concrete, &result) {
            prop_assert!(false, "seed {}: {}\n{}", seed, v, src);
        }
    }

    #[test]
    fn mcfa_is_sound(seed in 0u64..10_000, m in 0usize..3) {
        let src = cfa::workloads::gen::random_program(seed, 35);
        let program = cfa::compile(&src).expect("generated programs compile");
        let concrete = run_flat_traced(&program, limits(), true);
        let result = analyze_mcfa(&program, m, EngineLimits::default());
        prop_assert!(result.metrics.status.is_complete());
        if let Err(v) = check_mcfa(&program, m, &concrete, &result) {
            prop_assert!(false, "seed {}: {}\n{}", seed, v, src);
        }
    }

    #[test]
    fn halt_sets_cover_concrete_values(seed in 0u64..10_000) {
        let src = cfa::workloads::gen::random_program(seed, 35);
        let program = cfa::compile(&src).expect("generated programs compile");
        let shared = run_shared_traced(&program, limits(), false);
        if let Outcome::Halted(value) = &shared.outcome {
            for analysis in cfa::Analysis::paper_panel() {
                let m = cfa::analyze(&program, analysis, EngineLimits::default());
                let covered = m.halt_values.iter().any(|abs| {
                    abs == value
                        || (abs == "int⊤" && value.parse::<i64>().is_ok())
                        || (abs == "bool⊤" && (value == "#t" || value == "#f"))
                        || (abs.starts_with("#<pair") && value.starts_with('('))
                        || (abs.starts_with("#<proc") && value.starts_with("#<procedure"))
                });
                prop_assert!(
                    covered,
                    "{}: {:?} not covered by {:?}\n{}",
                    analysis, value, m.halt_values, src
                );
            }
        }
    }

}

/// Exhaustive (not randomized): k-CFA soundness over the whole suite at
/// every depth 0..3 — one pass each, not one per proptest case.
#[test]
fn suite_soundness_at_all_depths() {
    for p in cfa::workloads::suite() {
        let program = cfa::compile(p.source).expect("suite compiles");
        let concrete = run_shared_traced(&program, Limits::default(), true);
        for k in 0..3 {
            let result = analyze_kcfa(&program, k, EngineLimits::default());
            if let Err(v) = check_kcfa(&program, k, &concrete, &result) {
                panic!("{} at k={}: {}", p.name, k, v);
            }
        }
    }
}

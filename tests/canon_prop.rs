//! Property tests for the canonical normal form (`cfa_core::canon`).
//!
//! For random programs — sequential and concurrent — normalization is
//! *engine-invariant*: all seven engine configurations (sequential,
//! replicated-parallel, sharded-parallel × both eval modes, plus the
//! reference oracle) must serialize to one byte-identical normal form.
//! And the form itself must round-trip: serialize → parse →
//! re-serialize is the identity on the JSON text, so a snapshot file
//! can be shipped, re-read, and diffed without loss.

use cfa::analysis::CanonSnapshot;
use cfa::Analysis;
use cfa_testsupport::{
    canon_snapshot_matrix, random_concurrent_scheme_program, random_scheme_program,
};
use proptest::prelude::*;

/// Asserts serialize → parse → re-serialize is the identity.
fn assert_roundtrips(label: &str, snapshot: &CanonSnapshot) {
    let json = snapshot.to_json();
    let parsed = CanonSnapshot::parse(&json)
        .unwrap_or_else(|e| panic!("{label}: normal form does not re-parse: {e}"));
    assert_eq!(
        parsed.to_json(),
        json,
        "{label}: normal form does not round-trip"
    );
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    /// Random sequential program × random context depth, across every
    /// CPS machine family: one normal form from seven engines, and it
    /// round-trips.
    #[test]
    fn random_scheme_normal_forms_are_engine_invariant(
        seed in 0u64..10_000,
        depth in 0usize..2,
    ) {
        let src = random_scheme_program(seed, 30);
        let p = cfa::compile(&src).expect("generated program compiles");
        for analysis in [
            Analysis::KCfa { k: depth },
            Analysis::MCfa { m: depth },
            Analysis::PolyKCfa { k: depth },
        ] {
            let label = format!("canon seed={seed} [{analysis}]");
            let snapshot = canon_snapshot_matrix(&p, &label, analysis);
            assert_roundtrips(&label, &snapshot);
        }
    }

    /// Random spawn/join/atom program: the concurrent machine family
    /// (abstract tids, atoms, thread return values) normalizes
    /// engine-invariantly too, and round-trips.
    #[test]
    fn random_concurrent_normal_forms_are_engine_invariant(
        seed in 0u64..10_000,
    ) {
        let src = random_concurrent_scheme_program(seed, 25);
        let p = cfa::compile(&src).expect("generated program compiles");
        for analysis in [Analysis::KCfa { k: 1 }, Analysis::MCfa { m: 1 }] {
            let label = format!("canon concurrent seed={seed} [{analysis}]");
            let snapshot = canon_snapshot_matrix(&p, &label, analysis);
            assert_roundtrips(&label, &snapshot);
        }
    }
}

//! ΓCFA for Featherweight Java (§8): abstract garbage collection and
//! abstract counting, validated against the concrete semantics and the
//! single-threaded-store analysis.
//!
//! * GC soundness: collecting per-state stores must not *add* halt
//!   classes, and everything the concrete run produces must stay
//!   covered. (GC may legitimately *remove* classes: collecting dead
//!   continuation bindings at merged `Kont` addresses cuts spurious
//!   return flow — the precision gain §8 hypothesizes.)
//! * Counting soundness: if a concrete run writes two *distinct*
//!   concrete addresses that abstract to the same abstract address, the
//!   counting analysis must report that address as plural
//!   ([`cfa::fj::Count::Many`]) — singular counts license must-alias
//!   reasoning, so a false `One` would be unsound.

use cfa::analysis::EngineLimits;
use cfa::fj::kcfa::{alpha_addr, analyze_fj, FjAnalysisOptions};
use cfa::fj::naive::{analyze_fj_naive, FjNaiveOptions};
use cfa::fj::{parse_fj, run_fj, FjLimits};
use cfa::workloads::gen_fj::{random_fj_program, FjGenConfig};
use std::collections::BTreeMap;

#[test]
fn gc_preserves_halt_classes_on_random_programs() {
    for seed in 0..16 {
        let src = random_fj_program(seed, FjGenConfig::default());
        let p = parse_fj(&src).unwrap();
        for k in [0, 1] {
            let plain = analyze_fj_naive(&p, FjNaiveOptions::paper(k));
            let gc = analyze_fj_naive(&p, FjNaiveOptions::paper(k).with_gc());
            // GC only ever removes flow (dead continuations stop feeding
            // stale callers), so its halt set is a subset of plain's; the
            // concrete run's coverage is checked separately below.
            assert!(
                gc.halt_classes.is_subset(&plain.halt_classes),
                "seed {seed} k={k}: GC added halt classes: gc {:?} ⊄ plain {:?}",
                gc.halt_classes,
                plain.halt_classes
            );
            assert!(
                gc.state_count <= plain.state_count,
                "seed {seed} k={k}: GC grew the state space ({} > {})",
                gc.state_count,
                plain.state_count
            );
        }
    }
}

#[test]
fn naive_halt_classes_within_single_store_machine() {
    // The single-threaded store (§3.7) over-approximates the per-state
    // search (§3.6) — on the OO side too.
    for seed in 16..28 {
        let src = random_fj_program(seed, FjGenConfig::default());
        let p = parse_fj(&src).unwrap();
        let naive = analyze_fj_naive(&p, FjNaiveOptions::paper(1));
        let fast = analyze_fj(&p, FjAnalysisOptions::paper(1), EngineLimits::default());
        assert!(
            naive.halt_classes.is_subset(&fast.metrics.halt_classes),
            "seed {seed}: naive {:?} ⊄ fast {:?}",
            naive.halt_classes,
            fast.metrics.halt_classes
        );
    }
}

#[test]
fn concrete_halt_class_is_predicted_by_gc_analysis() {
    for seed in 0..16 {
        let src = random_fj_program(seed, FjGenConfig::default());
        let p = parse_fj(&src).unwrap();
        let run = run_fj(&p, FjLimits::default());
        let Some(halted) = run.halted() else { continue };
        // Rendered as `ClassName@ctx`.
        let class_name = halted.split('@').next().unwrap();
        let gc = analyze_fj_naive(&p, FjNaiveOptions::paper(1).with_gc());
        let predicted: Vec<&str> = gc
            .halt_classes
            .iter()
            .map(|&c| p.name(p.class(c).name))
            .collect();
        assert!(
            predicted.contains(&class_name),
            "seed {seed}: concrete halt {class_name} not in GC'd prediction {predicted:?}"
        );
    }
}

/// Counting soundness: group the concrete store's addresses by their
/// abstraction; any group of size ≥ 2 must be counted `Many`, address
/// for address.
#[test]
fn counting_is_sound_against_concrete_allocation_multiplicity() {
    use cfa::fj::Count;
    let mut checked_groups = 0usize;
    let mut plural_groups = 0usize;
    for seed in 0..24 {
        let src = random_fj_program(seed, FjGenConfig::default());
        let p = parse_fj(&src).unwrap();
        let run = run_fj(&p, FjLimits::default());
        for k in [0usize, 1] {
            let counting = analyze_fj_naive(&p, FjNaiveOptions::paper(k).with_counting());
            let mut groups: BTreeMap<_, usize> = BTreeMap::new();
            for addr in run.store.keys() {
                *groups.entry(alpha_addr(addr, &run.times, k)).or_default() += 1;
            }
            for (abs_addr, concrete_count) in &groups {
                checked_groups += 1;
                if *concrete_count >= 2 {
                    plural_groups += 1;
                    assert_eq!(
                        counting.counts.get(abs_addr),
                        Some(&Count::Many),
                        "seed {seed} k={k}: {concrete_count} concrete addresses abstract \
                         to {abs_addr:?} but counting does not say Many"
                    );
                }
            }
        }
    }
    assert!(checked_groups > 100, "the corpus must exercise counting");
    assert!(
        plural_groups > 0,
        "the corpus must include plural allocations"
    );
}

#[test]
fn higher_k_is_more_singular() {
    // More context splits allocation sites, so counting at k=1 should
    // never be less singular than at k=0 on the same program.
    let mut improved = 0usize;
    for seed in 0..12 {
        let src = random_fj_program(seed, FjGenConfig::default());
        let p = parse_fj(&src).unwrap();
        let k0 = analyze_fj_naive(&p, FjNaiveOptions::paper(0).with_counting());
        let k1 = analyze_fj_naive(&p, FjNaiveOptions::paper(1).with_counting());
        if k1.singular_ratio() > k0.singular_ratio() {
            improved += 1;
        }
    }
    assert!(
        improved >= 3,
        "k=1 should improve singularity on several programs ({improved})"
    );
}

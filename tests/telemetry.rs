//! Trace-correctness tests for the telemetry layer: every engine's
//! counters must be mirrored exactly by its merged trace, rings must
//! degrade predictably (drop-oldest + `truncated`), and a disabled
//! trace must change nothing about the fixpoint.
//!
//! The parallel legs honor `CFA_STORE_BACKEND`
//! (`replicated` | `sharded` | `both`), mirroring the differential
//! suites, so the CI telemetry matrix can gate each backend in
//! isolation.

use cfa::analysis::engine::{run_fixpoint_with, EngineLimits, EvalMode};
use cfa::analysis::kcfa::KCfaMachine;
use cfa::analysis::parallel::{run_fixpoint_parallel_on, Replicated, Sharded};
use cfa::analysis::pool::{AnalysisPool, PoolConfig};
use cfa::analysis::telemetry::{TraceConfig, TraceEventKind, TraceLevel};
use cfa::analysis::Status;
use cfa_testsupport::{backend_selection, fixpoint_of, PAR_THREADS};

/// A suite program with enough fan-out that parallel runs steal, wake,
/// and skip (the same source family the differential suites chew on).
fn program() -> cfa::CpsProgram {
    cfa::compile(&cfa::workloads::fn_program(2, 2)).expect("suite program compiles")
}

fn limits_at(trace: TraceConfig) -> EngineLimits {
    EngineLimits {
        trace,
        ..EngineLimits::default()
    }
}

/// The core trace invariant, per run: the engine's `iterations` and
/// `skipped` counters equal the merged trace's eval/skip event totals
/// (counts are exact even if rings truncate).
fn assert_trace_matches_counters<C, A, V>(
    label: &str,
    r: &cfa::analysis::engine::FixpointResult<C, A, V>,
) {
    assert_eq!(r.status, Status::Completed, "{label}");
    assert_eq!(
        r.trace.count(TraceEventKind::EvalStart),
        r.iterations,
        "{label}: every iteration emits an eval-start"
    );
    assert_eq!(
        r.trace.count(TraceEventKind::EvalEnd),
        r.iterations,
        "{label}: eval starts and ends stay paired"
    );
    assert_eq!(
        r.trace.count(TraceEventKind::GateSkip),
        r.skipped,
        "{label}: every gate skip emits a skip event"
    );
}

/// `iterations + skipped` has a matching eval/skip event in the merged
/// trace — sequential and both parallel backends, both eval modes.
#[test]
fn eval_and_skip_events_match_engine_counters_everywhere() {
    let p = program();
    let backends = backend_selection();
    for mode in [EvalMode::SemiNaive, EvalMode::FullReeval] {
        for level in [TraceConfig::counters(), TraceConfig::full()] {
            let seq = run_fixpoint_with(&mut KCfaMachine::new(&p, 1), limits_at(level), mode);
            assert_trace_matches_counters(&format!("sequential {mode:?} {level:?}"), &seq);

            if backends.replicated {
                let r = run_fixpoint_parallel_on::<Replicated, _>(
                    &mut KCfaMachine::new(&p, 1),
                    PAR_THREADS,
                    limits_at(level),
                    mode,
                );
                assert_trace_matches_counters(&format!("replicated {mode:?} {level:?}"), &r);
            }
            if backends.sharded {
                let s = run_fixpoint_parallel_on::<Sharded, _>(
                    &mut KCfaMachine::new(&p, 1),
                    PAR_THREADS,
                    limits_at(level),
                    mode,
                );
                assert_trace_matches_counters(&format!("sharded {mode:?} {level:?}"), &s);
            }
        }
    }
}

/// Satellite of the counter-assembly fix: a two-worker run's totals
/// equal the sum over the per-worker lanes — nothing is dropped when
/// worker reports fold into the result.
#[test]
fn two_worker_totals_equal_sum_of_per_worker_rings() {
    let p = program();
    let backends = backend_selection();
    let check = |label: &str, r: &cfa::analysis::engine::FixpointResult<_, _, _>| {
        assert_eq!(r.status, Status::Completed, "{label}");
        assert_eq!(r.trace.workers.len(), 2, "{label}: one lane per worker");
        let lane_sum = |kind| -> u64 { r.trace.workers.iter().map(|w| w.count(kind)).sum() };
        assert_eq!(
            lane_sum(TraceEventKind::EvalStart),
            r.iterations,
            "{label}: iterations == Σ per-worker eval events"
        );
        assert_eq!(
            lane_sum(TraceEventKind::GateSkip),
            r.skipped,
            "{label}: skips == Σ per-worker skip events"
        );
        for lane in &r.trace.workers {
            let ts: Vec<u64> = lane.events.iter().map(|e| e.t_us).collect();
            assert!(
                ts.windows(2).all(|w| w[0] <= w[1]),
                "{label}: lane {} timestamps are monotone",
                lane.worker
            );
        }
    };
    if backends.replicated {
        let r = run_fixpoint_parallel_on::<Replicated, _>(
            &mut KCfaMachine::new(&p, 1),
            2,
            limits_at(TraceConfig::full()),
            EvalMode::SemiNaive,
        );
        check("replicated", &r);
    }
    if backends.sharded {
        let s = run_fixpoint_parallel_on::<Sharded, _>(
            &mut KCfaMachine::new(&p, 1),
            2,
            limits_at(TraceConfig::full()),
            EvalMode::SemiNaive,
        );
        check("sharded", &s);
    }
}

/// `CFA_TRACE=off` (the default [`TraceConfig::off`]) yields an empty
/// trace and the bit-identical fixpoint of a fully traced run.
#[test]
fn disabled_trace_is_empty_and_changes_nothing() {
    let p = program();
    let off = run_fixpoint_with(
        &mut KCfaMachine::new(&p, 1),
        limits_at(TraceConfig::off()),
        EvalMode::SemiNaive,
    );
    let full = run_fixpoint_with(
        &mut KCfaMachine::new(&p, 1),
        limits_at(TraceConfig::full()),
        EvalMode::SemiNaive,
    );
    assert!(off.trace.is_empty(), "off-level trace records nothing");
    assert_eq!(off.trace.workers.len(), 0, "off-level runs carry no lanes");
    assert_eq!(off.trace.level, TraceLevel::Off);
    assert_eq!(
        fixpoint_of(&off),
        fixpoint_of(&full),
        "tracing must not perturb the fixpoint"
    );
    assert_eq!(off.iterations, full.iterations, "deterministic sequential");
    assert_eq!(off.skipped, full.skipped);
}

/// A ring far smaller than the run truncates (drop-oldest, flag set)
/// while the per-kind counts stay exact.
#[test]
fn tiny_rings_truncate_but_counts_stay_exact() {
    let p = program();
    let tiny = TraceConfig {
        level: TraceLevel::Full,
        ring_capacity: 8,
    };
    let r = run_fixpoint_with(
        &mut KCfaMachine::new(&p, 1),
        limits_at(tiny),
        EvalMode::SemiNaive,
    );
    assert_eq!(r.status, Status::Completed);
    assert!(r.iterations > 8, "the run must overflow the ring");
    assert!(r.trace.truncated(), "overflow sets the truncated flag");
    assert_eq!(r.trace.event_count(), 8, "ring holds exactly its capacity");
    assert_eq!(
        r.trace.count(TraceEventKind::EvalStart),
        r.iterations,
        "counts never drop under truncation"
    );
    // Drop-oldest: the surviving ring is the run's tail, so its last
    // event is the run's last emit (an eval end), not its first.
    let lane = &r.trace.workers[0];
    assert_eq!(
        lane.events.last().map(|e| e.kind),
        Some(TraceEventKind::EvalEnd),
        "the newest event survives"
    );
}

/// Pool tenants trace across quanta (suspend/resume events land in the
/// job's own lane) and the pool's metrics count the work.
#[test]
fn pool_jobs_trace_quanta_and_metrics_count_them() {
    let program = std::sync::Arc::new(program());
    let pool = AnalysisPool::new(PoolConfig {
        threads: 2,
        ..PoolConfig::default()
    });
    let before = pool.metrics();
    assert_eq!(before.threads, 2);
    assert_eq!(before.submitted, 0);

    let jobs: Vec<_> = (0..3)
        .map(|_| {
            cfa::analysis::kcfa::submit_kcfa::<Replicated>(
                &pool,
                std::sync::Arc::clone(&program),
                1,
                limits_at(TraceConfig::full()),
            )
        })
        .collect();
    for job in jobs {
        let r = job.wait();
        assert!(r.metrics.status.is_complete());
        assert_eq!(
            r.fixpoint.trace.count(TraceEventKind::EvalStart),
            r.fixpoint.iterations,
            "tenant lanes carry the same eval invariant"
        );
        assert!(
            r.fixpoint.trace.count(TraceEventKind::TenantResume) >= 1,
            "every pool run resumes at least once"
        );
        assert_eq!(
            r.fixpoint.trace.count(TraceEventKind::TenantResume),
            r.fixpoint.trace.count(TraceEventKind::TenantSuspend),
            "every quantum brackets its work with resume/suspend"
        );
    }

    let after = pool.metrics();
    assert_eq!(after.submitted, 3);
    assert_eq!(after.finished, 3);
    assert_eq!(after.activated, 3);
    assert!(after.quanta >= 3, "at least one quantum per job");
    assert_eq!(after.live, 0, "nothing left queued or active");
    assert_eq!(after.queued, 0);
    let json = after.to_json();
    assert!(
        json.starts_with('{') && json.ends_with('}') && json.contains("\"finished\":3"),
        "one-line JSON shape: {json}"
    );
    pool.shutdown();
}

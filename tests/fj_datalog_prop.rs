//! Property tests: on arbitrary generated Featherweight Java programs,
//! the Datalog points-to encoding and the worklist abstract machine are
//! the *same analysis* — identical call graphs, halt classes, and
//! points-to sets — and the Datalog fixpoint is monotone in its inputs.

use cfa::analysis::EngineLimits;
use cfa::fj::kcfa::{analyze_fj, FjAVal, FjAnalysisOptions, TickPolicy};
use cfa::fj::{analyze_fj_datalog, parse_fj, FjDatalogOptions};
use cfa::workloads::gen_fj::{random_fj_program, FjGenConfig};
use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn datalog_equals_machine_on_generated_programs(
        seed in 0u64..10_000,
        classes in 2usize..7,
        stmts in 2usize..12,
        k in 0usize..2,
    ) {
        let src = random_fj_program(seed, FjGenConfig { classes, main_statements: stmts });
        let program = parse_fj(&src).expect("generator emits well-formed FJ");
        let machine = analyze_fj(
            &program,
            FjAnalysisOptions { k, policy: TickPolicy::OnInvocation, cast_filtering: false },
            EngineLimits::default(),
        );
        prop_assume!(machine.metrics.status.is_complete());
        let datalog = analyze_fj_datalog(&program, FjDatalogOptions::sensitive(k));

        prop_assert_eq!(&machine.metrics.call_targets, &datalog.call_targets);
        prop_assert_eq!(&machine.metrics.halt_classes, &datalog.halt_classes);

        // Points-to sets, address for address (excluding `this`, which
        // the machine aliases rather than allocates).
        let this_sym = program.interner().lookup("this").unwrap();
        let mut machine_pt: BTreeMap<_, BTreeSet<_>> = BTreeMap::new();
        for (addr, values) in machine.fixpoint.store.iter() {
            let cfa::fj::concrete::FjSlot::Var(sym) = addr.slot else { continue };
            if sym == this_sym {
                continue;
            }
            let classes: BTreeSet<_> = values
                .iter()
                .filter_map(|v| match v {
                    FjAVal::Obj { class, .. } => Some(*class),
                    _ => None,
                })
                .collect();
            if !classes.is_empty() {
                machine_pt
                    .entry((sym, addr.time.labels().to_vec()))
                    .or_default()
                    .extend(classes);
            }
        }
        prop_assert_eq!(machine_pt, datalog.points_to);
    }

    #[test]
    fn deeper_context_never_coarsens_halt_classes(
        seed in 0u64..10_000,
        classes in 2usize..6,
        stmts in 2usize..10,
    ) {
        // k=1 refines k=0: every k=1 halt class must also be a k=0 halt
        // class (context splitting only removes spurious flows).
        let src = random_fj_program(seed, FjGenConfig { classes, main_statements: stmts });
        let program = parse_fj(&src).expect("well-formed");
        let k0 = analyze_fj_datalog(&program, FjDatalogOptions::insensitive());
        let k1 = analyze_fj_datalog(&program, FjDatalogOptions::sensitive(1));
        prop_assert!(
            k1.halt_classes.is_subset(&k0.halt_classes),
            "k=1 {:?} ⊄ k=0 {:?}",
            k1.halt_classes,
            k0.halt_classes
        );
    }

    #[test]
    fn reachability_is_monotone_in_k(
        seed in 0u64..10_000,
        classes in 2usize..6,
    ) {
        // Projected to statements, k=1 reachability refines k=0's.
        let src = random_fj_program(seed, FjGenConfig { classes, main_statements: 8 });
        let program = parse_fj(&src).expect("well-formed");
        let k0 = analyze_fj_datalog(&program, FjDatalogOptions::insensitive());
        let k1 = analyze_fj_datalog(&program, FjDatalogOptions::sensitive(1));
        let stmts = |r: &cfa::fj::FjDatalogResult| {
            r.reachable.iter().map(|(s, _)| *s).collect::<BTreeSet<_>>()
        };
        prop_assert!(stmts(&k1).is_subset(&stmts(&k0)));
    }
}

//! Property tests for the semi-naive delta-aware transfer functions.
//!
//! For random programs and random machine/context configurations, the
//! semi-naive fixpoint must equal the full-re-evaluation fixpoint must
//! equal the reference fixpoint — for the sequential engine and both
//! 3-thread parallel backends (replicated and sharded stores).
//! `cfa_testsupport::assert_engines_agree` (called through the
//! per-family sweeps) runs exactly that six-engine matrix + oracle.
//!
//! Beyond agreement, the suite checks the *point* of semi-naive
//! evaluation: on feedback-heavy workloads the delta engine feeds
//! strictly fewer value ids through joins while performing the same
//! number of evaluations in the same order.

use cfa::analysis::engine::{run_fixpoint_with, EngineLimits, EvalMode};
use cfa::analysis::flatcfa::{FlatCfaMachine, FlatPolicy};
use cfa::analysis::kcfa::KCfaMachine;
use cfa_testsupport::{check_fj_program, check_scheme_program, random_scheme_program};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Random Scheme program × random context depth, across every CPS
    /// machine family: all five engines agree with the oracle.
    #[test]
    fn random_scheme_semi_naive_equals_full_equals_reference(
        seed in 0u64..10_000,
        k in 0usize..3,
    ) {
        let src = random_scheme_program(seed, 30);
        check_scheme_program(&src, &format!("semi-naive seed={seed}"), &[k]);
    }

    /// Random FJ program × random context depth, both tick policies.
    #[test]
    fn random_fj_semi_naive_equals_full_equals_reference(
        seed in 0u64..10_000,
        k in 0usize..3,
    ) {
        let src = cfa_testsupport::random_fj_program(seed, Default::default());
        check_fj_program(&src, &format!("semi-naive FJ seed={seed}"), &[k]);
    }

    /// The sharded backend keeps exact per-row semi-naive deltas on the
    /// *shared* store (no replica pinning): for random programs, its
    /// semi-naive fixpoint matches its own full re-evaluation and the
    /// sequential engine — facts, bound addresses, and configurations.
    #[test]
    fn sharded_semi_naive_equals_full_equals_sequential(
        seed in 0u64..10_000,
        k in 0usize..2,
    ) {
        use cfa::analysis::shardstore::run_fixpoint_sharded_with;
        if !cfa_testsupport::backend_selection().sharded {
            // Honor the CI backend matrix: the replicated-only leg must
            // not exercise the sharded engine.
            return Ok(());
        }
        let src = random_scheme_program(seed, 30);
        let p = cfa::compile(&src).expect("generated programs compile");
        let seq = run_fixpoint_with(
            &mut KCfaMachine::new(&p, k), EngineLimits::default(), EvalMode::SemiNaive);
        for mode in [EvalMode::SemiNaive, EvalMode::FullReeval] {
            let sh = run_fixpoint_sharded_with(
                &mut KCfaMachine::new(&p, k), 3, EngineLimits::default(), mode);
            prop_assert!(sh.status.is_complete(), "seed {} {:?}", seed, mode);
            prop_assert_eq!(
                cfa_testsupport::fixpoint_of(&sh),
                cfa_testsupport::fixpoint_of(&seq),
                "seed {} {:?}: sharded fixpoint diverges", seed, mode
            );
        }
    }

    /// Sequential scheduling is deterministic, so the two modes must
    /// not only reach the same fixpoint but take the identical
    /// evaluation trajectory — semi-naive only narrows the join inputs.
    #[test]
    fn modes_share_the_evaluation_trajectory(seed in 0u64..10_000, k in 0usize..2) {
        let src = random_scheme_program(seed, 30);
        let p = cfa::compile(&src).expect("generated programs compile");
        let semi = run_fixpoint_with(
            &mut KCfaMachine::new(&p, k), EngineLimits::default(), EvalMode::SemiNaive);
        let full = run_fixpoint_with(
            &mut KCfaMachine::new(&p, k), EngineLimits::default(), EvalMode::FullReeval);
        prop_assert_eq!(semi.iterations, full.iterations, "seed {}", seed);
        prop_assert_eq!(semi.wakeups, full.wakeups, "seed {}", seed);
        prop_assert_eq!(semi.delta_facts, full.delta_facts, "seed {}", seed);
        prop_assert!(
            semi.store.value_join_count() <= full.store.value_join_count(),
            "seed {}: semi-naive scanned more ids ({} > {})",
            seed, semi.store.value_join_count(), full.store.value_join_count()
        );
    }
}

/// On the interpreter workload (the most feedback-heavy suite program)
/// the narrowing must be material, not incidental: every machine family
/// re-runs configurations many times, and semi-naive re-runs must scan
/// far fewer ids.
#[test]
fn interp_join_traffic_shrinks_materially() {
    let interp = cfa::workloads::suite()
        .into_iter()
        .find(|p| p.name == "interp")
        .expect("suite has interp");
    let p = cfa::compile(interp.source).expect("interp compiles");

    fn check<M: cfa::analysis::engine::AbstractMachine>(label: &str, mut mk: impl FnMut() -> M) {
        let semi = run_fixpoint_with(&mut mk(), EngineLimits::default(), EvalMode::SemiNaive);
        let full = run_fixpoint_with(&mut mk(), EngineLimits::default(), EvalMode::FullReeval);
        assert!(semi.delta_applies > 0, "{label}: no narrowed applications");
        let (s, f) = (semi.store.value_join_count(), full.store.value_join_count());
        assert!(
            s * 2 <= f,
            "{label}: semi-naive scanned {s} ids vs {f} full — expected ≥2× reduction"
        );
        assert_eq!(semi.store.fact_count(), full.store.fact_count(), "{label}");
    }

    check("k-CFA k=1", || KCfaMachine::new(&p, 1));
    check("m-CFA m=1", || {
        FlatCfaMachine::new(&p, 1, FlatPolicy::TopMFrames)
    });
}

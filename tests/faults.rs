//! Fault-injection suite for the hardened fixpoint fabric.
//!
//! Every test here interrupts a run mid-flight — injected transfer
//! panic, cooperative cancellation, forced delta-log trim, deliberate
//! termination-protocol violation — and checks the three robustness
//! contracts the engine now guarantees:
//!
//! 1. **the process survives**: a panicking configuration aborts the
//!    *run*, all workers drain and join, and the caller gets a
//!    well-formed [`Status::Aborted`] naming the panicking config;
//! 2. **interruption is prompt**: a cancellation request is observed
//!    within one limit-check cadence per worker
//!    ([`LIMIT_CHECK_CADENCE`] pops), never "whenever the run ends";
//! 3. **partials are sound**: whatever an interrupted run has in its
//!    store is a subset of the completed fixpoint — monotone engines
//!    only ever add facts, so a prefix of a run is never wrong, merely
//!    incomplete.
//!
//! Faults are keyed on exact global pop/evaluation counts
//! ([`FaultPlan`]), so each scenario lands at the same logical point on
//! every backend and run. The parallel scenarios honor
//! `CFA_STORE_BACKEND` like the differential suites, so the CI matrix
//! can gate each backend in isolation.

use cfa::analysis::engine::{
    run_fixpoint_with, AbstractMachine, CancelToken, EngineLimits, EvalMode, Status, TrackedStore,
};
use cfa::analysis::fabric::{FaultPlan, LIMIT_CHECK_CADENCE};
use cfa::analysis::kcfa::KCfaMachine;
use cfa::analysis::parallel::{
    run_fixpoint_parallel_on, ParallelMachine, Replicated, Sharded, StoreBackend,
};
use cfa::analysis::reference::{run_fixpoint_reference, RefTrackedStore, ReferenceMachine};
use cfa::CpsProgram;
use cfa_testsupport::{
    assert_fixpoint_subset, backend_selection, fixpoint_of, fixpoint_of_reference,
    limits_with_plan, quiet_injected_panics, PAR_THREADS,
};
use std::time::Duration;

const MODES: [EvalMode; 2] = [EvalMode::SemiNaive, EvalMode::FullReeval];

/// The workload all injections land on: the suite's `regex` program at
/// k = 1 — roughly 2,500 sequential evaluations over 1,100+
/// configurations, large enough that every pop- or eval-keyed clause
/// fires mid-run on every backend and thread count.
fn regex() -> CpsProgram {
    let src = cfa::workloads::suite()
        .iter()
        .find(|p| p.name == "regex")
        .expect("regex is in the workloads suite")
        .source;
    cfa::compile(src).expect("suite program compiles")
}

/// An injected panic at evaluation 50 must leave the process alive,
/// join every worker, and return `Aborted` naming a real configuration
/// whose partial store is a subset of the completed fixpoint.
fn injected_panic_is_contained<B: StoreBackend>(mode: EvalMode) {
    quiet_injected_panics();
    let p = regex();
    let full = run_fixpoint_with(&mut KCfaMachine::new(&p, 1), EngineLimits::default(), mode);
    assert!(full.status.is_complete());
    let full = fixpoint_of(&full);

    let limits = limits_with_plan(FaultPlan::new().panic_at_eval(50));
    let r =
        run_fixpoint_parallel_on::<B, _>(&mut KCfaMachine::new(&p, 1), PAR_THREADS, limits, mode);
    let Status::Aborted { config, message } = &r.status else {
        panic!("{}/{mode:?}: expected Aborted, got {:?}", B::NAME, r.status);
    };
    assert!(
        message.contains("injected fault: panic at evaluation 50"),
        "{}/{mode:?}: abort message {message:?} does not carry the panic payload",
        B::NAME
    );
    assert!(
        !config.is_empty() && config != "<seed>" && config != "<worker>",
        "{}/{mode:?}: abort should name the evaluating configuration, got {config:?}",
        B::NAME
    );
    assert_fixpoint_subset(
        &format!("{}/{mode:?} post-panic partial", B::NAME),
        &fixpoint_of(&r),
        &full,
    );
}

#[test]
fn injected_panic_is_contained_on_every_backend() {
    let backends = backend_selection();
    for mode in MODES {
        if backends.replicated {
            injected_panic_is_contained::<Replicated>(mode);
        }
        if backends.sharded {
            injected_panic_is_contained::<Sharded>(mode);
        }
    }
}

/// A two-party machine whose steps 1 and 2 each spin until the other
/// has started (bounded by a short deadline): with two workers, worker
/// 0 blocks inside one step, so worker 1 *must* pick up the other —
/// the deterministic way to land a fault on a non-zero worker id,
/// which cheap workloads can't guarantee (one fast worker may drain
/// the whole queue alone).
#[derive(Clone)]
struct TwoParty {
    a_started: std::sync::Arc<std::sync::atomic::AtomicBool>,
    b_started: std::sync::Arc<std::sync::atomic::AtomicBool>,
}

impl TwoParty {
    fn new() -> Self {
        TwoParty {
            a_started: Default::default(),
            b_started: Default::default(),
        }
    }

    fn await_peer(flag: &std::sync::atomic::AtomicBool) {
        let deadline = std::time::Instant::now() + Duration::from_millis(500);
        while !flag.load(std::sync::atomic::Ordering::Acquire)
            && std::time::Instant::now() < deadline
        {
            std::thread::yield_now();
        }
    }
}

impl AbstractMachine for TwoParty {
    type Config = u8;
    type Addr = u8;
    type Val = u8;

    fn initial(&self) -> u8 {
        0
    }

    fn step(&mut self, c: &u8, s: &mut TrackedStore<'_, u8, u8>, out: &mut Vec<u8>) {
        use std::sync::atomic::Ordering;
        match *c {
            0 => out.extend([1, 2]),
            1 => {
                self.a_started.store(true, Ordering::Release);
                Self::await_peer(&self.b_started);
                s.join(&1, [1u8]);
            }
            2 => {
                self.b_started.store(true, Ordering::Release);
                Self::await_peer(&self.a_started);
                s.join(&2, [2u8]);
            }
            _ => {}
        }
    }
}

impl ParallelMachine for TwoParty {
    fn fork(&self) -> Self {
        self.clone()
    }

    fn absorb(&mut self, _worker: Self) {}
}

/// The `panic_worker` clause scopes the eval count to one worker, so
/// the abort path is exercised from a non-zero worker id too.
fn worker_scoped_panic_is_contained<B: StoreBackend>() {
    quiet_injected_panics();
    let limits = limits_with_plan(FaultPlan::new().panic_at_eval(1).on_worker(1));
    let r = run_fixpoint_parallel_on::<B, _>(&mut TwoParty::new(), 2, limits, EvalMode::SemiNaive);
    let Status::Aborted { message, .. } = &r.status else {
        panic!("{}: expected Aborted, got {:?}", B::NAME, r.status);
    };
    assert!(
        message.contains("worker 1"),
        "{}: abort message {message:?} should come from worker 1",
        B::NAME
    );
}

#[test]
fn worker_scoped_panic_is_contained_on_every_backend() {
    let backends = backend_selection();
    if backends.replicated {
        worker_scoped_panic_is_contained::<Replicated>();
    }
    if backends.sharded {
        worker_scoped_panic_is_contained::<Sharded>();
    }
}

/// Cancellation is observed within one limit-check cadence per worker:
/// after the token flips at global pop `N`, each of the `t` workers
/// performs at most `LIMIT_CHECK_CADENCE` further pops before its next
/// check (×2 slack for pops counted while the flip is in flight).
fn cancellation_lands_within_bound<B: StoreBackend>(mode: EvalMode) {
    const CANCEL_AT: u64 = 400;
    let p = regex();
    let limits = limits_with_plan(FaultPlan::new().cancel_at_pop(CANCEL_AT));
    let r =
        run_fixpoint_parallel_on::<B, _>(&mut KCfaMachine::new(&p, 1), PAR_THREADS, limits, mode);
    assert_eq!(r.status, Status::Cancelled, "{}/{mode:?}", B::NAME);
    let pops = r.iterations + r.skipped;
    let bound = CANCEL_AT + (PAR_THREADS as u64) * LIMIT_CHECK_CADENCE * 2;
    assert!(
        pops <= bound,
        "{}/{mode:?}: {pops} pops despite cancellation at pop {CANCEL_AT} (bound {bound})",
        B::NAME
    );
    let full = run_fixpoint_with(&mut KCfaMachine::new(&p, 1), EngineLimits::default(), mode);
    assert_fixpoint_subset(
        &format!("{}/{mode:?} cancelled partial", B::NAME),
        &fixpoint_of(&r),
        &fixpoint_of(&full),
    );
}

#[test]
fn cancellation_lands_within_bound_on_every_backend() {
    let backends = backend_selection();
    for mode in MODES {
        if backends.replicated {
            cancellation_lands_within_bound::<Replicated>(mode);
        }
        if backends.sharded {
            cancellation_lands_within_bound::<Sharded>(mode);
        }
    }
}

/// A forced watermark-0 delta-log trim mid-run degrades baselines to
/// the snapshot-loss fallback but must not change the fixpoint.
fn forced_trim_preserves_fixpoint<B: StoreBackend>(mode: EvalMode) {
    let p = regex();
    let full = run_fixpoint_with(&mut KCfaMachine::new(&p, 1), EngineLimits::default(), mode);
    let limits = limits_with_plan(FaultPlan::new().trim_at_pop(100));
    let r =
        run_fixpoint_parallel_on::<B, _>(&mut KCfaMachine::new(&p, 1), PAR_THREADS, limits, mode);
    assert!(
        r.status.is_complete(),
        "{}/{mode:?}: forced trim should not stop the run, got {:?}",
        B::NAME,
        r.status
    );
    assert_eq!(
        fixpoint_of(&r),
        fixpoint_of(&full),
        "{}/{mode:?}: forced mid-run trim changed the fixpoint",
        B::NAME
    );
}

#[test]
fn forced_trim_preserves_fixpoint_on_every_backend() {
    let backends = backend_selection();
    for mode in MODES {
        if backends.replicated {
            forced_trim_preserves_fixpoint::<Replicated>(mode);
        }
        if backends.sharded {
            forced_trim_preserves_fixpoint::<Sharded>(mode);
        }
    }
}

/// A leaked pending count is a deliberate termination-protocol
/// violation: pending never reaches zero, every worker goes idle, and
/// without the watchdog the run would hang forever. The watchdog must
/// turn that hang into a diagnostic abort.
fn leaked_pending_trips_watchdog<B: StoreBackend>() {
    let p = regex();
    let mut limits = limits_with_plan(FaultPlan::new().leak_pending_at_pop(5));
    limits.stall_timeout = Some(Duration::from_millis(200));
    let r = run_fixpoint_parallel_on::<B, _>(
        &mut KCfaMachine::new(&p, 1),
        PAR_THREADS,
        limits,
        EvalMode::SemiNaive,
    );
    let Status::Aborted { config, message } = &r.status else {
        panic!(
            "{}: expected the watchdog to abort, got {:?}",
            B::NAME,
            r.status
        );
    };
    assert_eq!(config.as_str(), Status::STALL_WATCHDOG, "{}", B::NAME);
    assert!(
        message.contains("pending"),
        "{}: watchdog dump {message:?} should report the stuck pending count",
        B::NAME
    );
}

#[test]
fn leaked_pending_trips_watchdog_on_every_backend() {
    let backends = backend_selection();
    if backends.replicated {
        leaked_pending_trips_watchdog::<Replicated>();
    }
    if backends.sharded {
        leaked_pending_trips_watchdog::<Sharded>();
    }
}

/// The sequential engine shares the fault hooks (it counts as worker
/// 0), so the same plan aborts it the same way.
#[test]
fn sequential_engine_contains_injected_panic() {
    quiet_injected_panics();
    let p = regex();
    for mode in MODES {
        let full = run_fixpoint_with(&mut KCfaMachine::new(&p, 1), EngineLimits::default(), mode);
        let limits = limits_with_plan(FaultPlan::new().panic_at_eval(50));
        let r = run_fixpoint_with(&mut KCfaMachine::new(&p, 1), limits, mode);
        let Status::Aborted { config, message } = &r.status else {
            panic!("sequential/{mode:?}: expected Aborted, got {:?}", r.status);
        };
        assert!(message.contains("injected fault: panic at evaluation 50"));
        assert!(!config.is_empty());
        assert_fixpoint_subset(
            &format!("sequential/{mode:?} post-panic partial"),
            &fixpoint_of(&r),
            &fixpoint_of(&full),
        );
    }
}

/// The sequential engine observes an injected cancellation within its
/// own (coarser, 256-pop) cadence.
#[test]
fn sequential_engine_cancellation_lands_within_bound() {
    const CANCEL_AT: u64 = 400;
    let p = regex();
    let limits = limits_with_plan(FaultPlan::new().cancel_at_pop(CANCEL_AT));
    let r = run_fixpoint_with(&mut KCfaMachine::new(&p, 1), limits, EvalMode::SemiNaive);
    assert_eq!(r.status, Status::Cancelled);
    assert!(
        r.iterations + r.skipped <= CANCEL_AT + 256 * 2,
        "sequential engine overran the injected cancellation: {} pops",
        r.iterations + r.skipped
    );
}

/// A token cancelled before the run starts stops every engine at its
/// very first limit check, before any evaluation.
#[test]
fn pre_cancelled_token_stops_every_engine_immediately() {
    let p = regex();
    let token = CancelToken::new();
    token.cancel();

    let r = run_fixpoint_with(
        &mut KCfaMachine::new(&p, 1),
        EngineLimits::cancellable(token.clone()),
        EvalMode::SemiNaive,
    );
    assert_eq!(r.status, Status::Cancelled);
    assert_eq!(
        r.iterations, 0,
        "sequential engine evaluated despite cancellation"
    );

    let r = run_fixpoint_reference(
        &mut KCfaMachine::new(&p, 1),
        EngineLimits::cancellable(token.clone()),
    );
    assert_eq!(r.status, Status::Cancelled);
    assert_eq!(
        r.iterations, 0,
        "reference engine evaluated despite cancellation"
    );

    let backends = backend_selection();
    if backends.replicated {
        let r = run_fixpoint_parallel_on::<Replicated, _>(
            &mut KCfaMachine::new(&p, 1),
            PAR_THREADS,
            EngineLimits::cancellable(token.clone()),
            EvalMode::SemiNaive,
        );
        assert_eq!(r.status, Status::Cancelled);
    }
    if backends.sharded {
        let r = run_fixpoint_parallel_on::<Sharded, _>(
            &mut KCfaMachine::new(&p, 1),
            PAR_THREADS,
            EngineLimits::cancellable(token),
            EvalMode::SemiNaive,
        );
        assert_eq!(r.status, Status::Cancelled);
    }
}

/// A machine whose transfer function itself panics (no injection
/// plumbing involved) — the containment the fault plan merely
/// simulates. The chain 0 → 1 → … guarantees config 7 is evaluated on
/// every backend; `Aborted` must name it.
#[derive(Clone)]
struct PoisonPill;

impl AbstractMachine for PoisonPill {
    type Config = u32;
    type Addr = u32;
    type Val = u32;

    fn initial(&self) -> u32 {
        0
    }

    fn step(&mut self, c: &u32, s: &mut TrackedStore<'_, u32, u32>, out: &mut Vec<u32>) {
        if *c == 7 {
            panic!("injected fault: poison pill at config 7");
        }
        s.join(c, [*c]);
        if *c < 20 {
            out.push(c + 1);
        }
    }
}

impl ParallelMachine for PoisonPill {
    fn fork(&self) -> Self {
        PoisonPill
    }

    fn absorb(&mut self, _worker: Self) {}
}

impl ReferenceMachine for PoisonPill {
    type Config = u32;
    type Addr = u32;
    type Val = u32;

    fn initial(&self) -> u32 {
        0
    }

    fn step(&mut self, c: &u32, s: &mut RefTrackedStore<'_, u32, u32>, out: &mut Vec<u32>) {
        if *c == 7 {
            panic!("injected fault: poison pill at config 7");
        }
        s.join(*c, [*c]);
        if *c < 20 {
            out.push(c + 1);
        }
    }
}

#[test]
fn transfer_function_panic_names_the_config_on_every_engine() {
    quiet_injected_panics();
    let expect_poisoned = |status: &Status, engine: &str| {
        let Status::Aborted { config, message } = status else {
            panic!("{engine}: expected Aborted, got {status:?}");
        };
        assert_eq!(config.as_str(), "7", "{engine}: abort should name config 7");
        assert!(message.contains("poison pill"), "{engine}: {message:?}");
    };

    for mode in MODES {
        let r = run_fixpoint_with(&mut PoisonPill, EngineLimits::default(), mode);
        expect_poisoned(&r.status, &format!("sequential/{mode:?}"));

        let backends = backend_selection();
        if backends.replicated {
            let r = run_fixpoint_parallel_on::<Replicated, _>(
                &mut PoisonPill,
                PAR_THREADS,
                EngineLimits::default(),
                mode,
            );
            expect_poisoned(&r.status, &format!("replicated/{mode:?}"));
        }
        if backends.sharded {
            let r = run_fixpoint_parallel_on::<Sharded, _>(
                &mut PoisonPill,
                PAR_THREADS,
                EngineLimits::default(),
                mode,
            );
            expect_poisoned(&r.status, &format!("sharded/{mode:?}"));
        }
    }

    let r = run_fixpoint_reference(&mut PoisonPill, EngineLimits::default());
    expect_poisoned(&r.status, "reference");
}

/// A panicking `seed` is contained too, tagged `<seed>` (there is no
/// configuration to blame yet).
#[derive(Clone)]
struct PoisonSeed;

impl AbstractMachine for PoisonSeed {
    type Config = u32;
    type Addr = u32;
    type Val = u32;

    fn initial(&self) -> u32 {
        0
    }

    fn seed(&mut self, _store: &mut TrackedStore<'_, u32, u32>) {
        panic!("injected fault: poisoned seed");
    }

    fn step(&mut self, _c: &u32, _s: &mut TrackedStore<'_, u32, u32>, _out: &mut Vec<u32>) {}
}

impl ParallelMachine for PoisonSeed {
    fn fork(&self) -> Self {
        PoisonSeed
    }

    fn absorb(&mut self, _worker: Self) {}
}

#[test]
fn seed_panic_is_contained_on_every_backend() {
    quiet_injected_panics();
    let backends = backend_selection();
    let expect_seed_abort = |status: &Status, engine: &str| {
        let Status::Aborted { config, message } = status else {
            panic!("{engine}: expected Aborted, got {status:?}");
        };
        assert_eq!(config.as_str(), "<seed>", "{engine}");
        assert!(message.contains("poisoned seed"), "{engine}: {message:?}");
    };
    if backends.replicated {
        let r = run_fixpoint_parallel_on::<Replicated, _>(
            &mut PoisonSeed,
            PAR_THREADS,
            EngineLimits::default(),
            EvalMode::SemiNaive,
        );
        expect_seed_abort(&r.status, "replicated");
    }
    if backends.sharded {
        let r = run_fixpoint_parallel_on::<Sharded, _>(
            &mut PoisonSeed,
            PAR_THREADS,
            EngineLimits::default(),
            EvalMode::SemiNaive,
        );
        expect_seed_abort(&r.status, "sharded");
    }
}

/// Satellite: an iteration-limited run on the *sharded* backend leaves
/// a well-formed partial store — every row readable, every fact a
/// subset of the completed fixpoint — even though workers stopped
/// mid-protocol with messages still in flight.
#[test]
fn sharded_iteration_limit_partial_is_well_formed() {
    let p = regex();
    for mode in MODES {
        let r = run_fixpoint_parallel_on::<Sharded, _>(
            &mut KCfaMachine::new(&p, 1),
            PAR_THREADS,
            EngineLimits::iterations(300),
            mode,
        );
        assert_eq!(r.status, Status::IterationLimit, "{mode:?}");
        assert!(r.iterations > 0, "{mode:?}: the run did start");
        let partial = fixpoint_of(&r);
        assert!(
            !partial.configs.is_empty(),
            "{mode:?}: partial run discovered configurations"
        );
        let full = run_fixpoint_with(&mut KCfaMachine::new(&p, 1), EngineLimits::default(), mode);
        assert_fixpoint_subset(
            &format!("sharded/{mode:?} iteration-limited partial"),
            &partial,
            &fixpoint_of(&full),
        );
    }
}

/// Satellite: the reference oracle shares the main engine's pre-pop,
/// pop-keyed limit discipline. A zero budget must stop it at the very
/// first check, before any evaluation — the old per-iteration check
/// ran the transfer function first and could overrun silently.
#[test]
fn reference_time_budget_checked_before_first_pop() {
    let p = regex();
    let r = run_fixpoint_reference(
        &mut KCfaMachine::new(&p, 1),
        EngineLimits::timeout(Duration::ZERO),
    );
    assert_eq!(r.status, Status::TimedOut);
    assert_eq!(
        r.iterations, 0,
        "the oracle must consult the clock before popping, not after evaluating"
    );
}

/// An unbounded machine under a small budget: the oracle must return
/// `TimedOut` promptly instead of chasing the infinite frontier.
struct InfiniteChain;

impl ReferenceMachine for InfiniteChain {
    type Config = u64;
    type Addr = u64;
    type Val = u64;

    fn initial(&self) -> u64 {
        0
    }

    fn step(&mut self, c: &u64, _s: &mut RefTrackedStore<'_, u64, u64>, out: &mut Vec<u64>) {
        out.push(c + 1);
    }
}

#[test]
fn reference_time_budget_cannot_be_overrun() {
    let budget = Duration::from_millis(20);
    let start = std::time::Instant::now();
    let r = run_fixpoint_reference(&mut InfiniteChain, EngineLimits::timeout(budget));
    assert_eq!(r.status, Status::TimedOut);
    // The check fires every 256 pops of a near-instant step; seconds of
    // slack still catches a per-iteration (or absent) discipline that
    // would chase the infinite frontier until max_iterations.
    assert!(
        start.elapsed() < Duration::from_secs(5),
        "oracle overran its time budget: ran {:?}",
        start.elapsed()
    );
}

/// The oracle's iteration-limited partial obeys the same soundness
/// contract as the main engines' partials.
#[test]
fn reference_iteration_limit_partial_is_sound() {
    let p = regex();
    let full = run_fixpoint_reference(&mut KCfaMachine::new(&p, 1), EngineLimits::default());
    assert!(full.status.is_complete());
    let r = run_fixpoint_reference(&mut KCfaMachine::new(&p, 1), EngineLimits::iterations(300));
    assert_eq!(r.status, Status::IterationLimit);
    assert_eq!(r.iterations, 300);
    assert_fixpoint_subset(
        "reference iteration-limited partial",
        &fixpoint_of_reference(&r),
        &fixpoint_of_reference(&full),
    );
}

/// The `CFA_FAULT_PLAN` grammar: well-formed plans parse, junk is
/// rejected with a message naming the bad clause.
#[test]
fn fault_plan_parse_grammar() {
    assert!(FaultPlan::parse("panic_eval=40,panic_worker=1").is_ok());
    assert!(FaultPlan::parse("cancel_pop=100").is_ok());
    assert!(FaultPlan::parse(" trim_pop = 3 , leak_pop = 9 ").is_ok());
    assert!(
        FaultPlan::parse("").is_ok(),
        "empty plan is the unarmed plan"
    );
    assert!(FaultPlan::parse("panic_eval")
        .unwrap_err()
        .contains("key=value"));
    assert!(FaultPlan::parse("panic_eval=x")
        .unwrap_err()
        .contains("panic_eval=x"));
    assert!(FaultPlan::parse("explode=1")
        .unwrap_err()
        .contains("explode"));
}

/// Fault-plan counters are armed per run, not per plan object: two
/// concurrent fixpoints sharing one `Arc<FaultPlan>` each observe the
/// fault at *their own* 50th evaluation. Before the counters were
/// per-run, the clause fired once at the 50th evaluation *summed
/// across the two runs* — one run aborted (nondeterministically) and
/// the other sailed through on a half-consumed counter.
fn shared_plan_faults_every_planned_run<B: StoreBackend>() {
    quiet_injected_panics();
    let limits = limits_with_plan(FaultPlan::new().panic_at_eval(50));
    let handles: Vec<_> = (0..2)
        .map(|_| {
            let limits = limits.clone();
            std::thread::spawn(move || {
                let p = regex();
                run_fixpoint_parallel_on::<B, _>(
                    &mut KCfaMachine::new(&p, 1),
                    PAR_THREADS,
                    limits,
                    EvalMode::SemiNaive,
                )
            })
        })
        .collect();
    for (i, h) in handles.into_iter().enumerate() {
        let r = h
            .join()
            .expect("analysis thread panicked outside the engine");
        let Status::Aborted { message, .. } = &r.status else {
            panic!(
                "{}: run {i} shared the plan but did not fault — counters aliased, got {:?}",
                B::NAME,
                r.status
            );
        };
        assert!(
            message.contains("injected fault: panic at evaluation 50"),
            "{}: run {i} aborted off-plan: {message:?}",
            B::NAME
        );
    }

    // Same aliasing bug, sequential flavor: reusing the plan for a
    // second run must fire the clause again, not find it consumed.
    let p = regex();
    let r = run_fixpoint_parallel_on::<B, _>(
        &mut KCfaMachine::new(&p, 1),
        PAR_THREADS,
        limits,
        EvalMode::SemiNaive,
    );
    assert!(
        matches!(&r.status, Status::Aborted { .. }),
        "{}: a reused plan must re-arm its counters, got {:?}",
        B::NAME,
        r.status
    );
}

#[test]
fn shared_plan_faults_every_planned_run_on_every_backend() {
    let backends = backend_selection();
    if backends.replicated {
        shared_plan_faults_every_planned_run::<Replicated>();
    }
    if backends.sharded {
        shared_plan_faults_every_planned_run::<Sharded>();
    }
}

/// A concurrent *unplanned* run must never observe a neighbor's fault
/// plan: only the planned fixpoint faults.
fn only_the_planned_run_faults<B: StoreBackend>() {
    quiet_injected_panics();
    let planned = std::thread::spawn(|| {
        let p = regex();
        run_fixpoint_parallel_on::<B, _>(
            &mut KCfaMachine::new(&p, 1),
            PAR_THREADS,
            limits_with_plan(FaultPlan::new().panic_at_eval(50)),
            EvalMode::SemiNaive,
        )
    });
    let unplanned = std::thread::spawn(|| {
        let p = regex();
        run_fixpoint_parallel_on::<B, _>(
            &mut KCfaMachine::new(&p, 1),
            PAR_THREADS,
            EngineLimits::default(),
            EvalMode::SemiNaive,
        )
    });
    let r = planned.join().expect("planned thread");
    assert!(
        matches!(&r.status, Status::Aborted { .. }),
        "{}: the planned run must fault, got {:?}",
        B::NAME,
        r.status
    );
    let r = unplanned.join().expect("unplanned thread");
    assert!(
        r.status.is_complete(),
        "{}: the unplanned concurrent run caught a neighbor's fault: {:?}",
        B::NAME,
        r.status
    );
}

#[test]
fn only_the_planned_run_faults_on_every_backend() {
    let backends = backend_selection();
    if backends.replicated {
        only_the_planned_run_faults::<Replicated>();
    }
    if backends.sharded {
        only_the_planned_run_faults::<Sharded>();
    }
}

/// The 2-tenant pool flavor of `leaked_pending_trips_watchdog`: the
/// stall watchdog is scoped per tenant, so a stalled run aborts with
/// the watchdog diagnostic while its pool-mate completes untouched.
fn stalled_tenant_spares_its_pool_mate<B: cfa::analysis::pool::PoolBackend>() {
    use cfa::analysis::pool::{AnalysisPool, PoolConfig};
    let pool = AnalysisPool::new(PoolConfig {
        threads: 2,
        ..PoolConfig::default()
    });
    let p = std::sync::Arc::new(regex());
    let mut limits = limits_with_plan(FaultPlan::new().leak_pending_at_pop(5));
    limits.stall_timeout = Some(Duration::from_millis(200));
    let stalled =
        cfa::analysis::kcfa::submit_kcfa::<B>(&pool, std::sync::Arc::clone(&p), 1, limits);
    let healthy = cfa::analysis::kcfa::submit_kcfa::<B>(&pool, p, 1, EngineLimits::default());

    let healthy_run = healthy.wait();
    assert!(
        healthy_run.fixpoint.status.is_complete(),
        "{}: pool-mate of a stalled tenant must complete, got {:?}",
        B::NAME,
        healthy_run.fixpoint.status
    );
    let stalled_run = stalled.wait();
    let Status::Aborted { config, message } = &stalled_run.fixpoint.status else {
        panic!(
            "{}: expected the per-tenant watchdog to abort the stalled run, got {:?}",
            B::NAME,
            stalled_run.fixpoint.status
        );
    };
    assert_eq!(config.as_str(), Status::STALL_WATCHDOG, "{}", B::NAME);
    assert!(
        message.contains("pending"),
        "{}: watchdog dump {message:?} should report the stuck pending count",
        B::NAME
    );
    pool.shutdown();
}

#[test]
fn stalled_tenant_spares_its_pool_mate_on_every_backend() {
    let backends = backend_selection();
    if backends.replicated {
        stalled_tenant_spares_its_pool_mate::<Replicated>();
    }
    if backends.sharded {
        stalled_tenant_spares_its_pool_mate::<Sharded>();
    }
}
